package serve

import (
	"math"
	"sync"
	"time"
)

// TenantStat is one tenant's entry in /stats. Requests counts every
// attempt (including rejected ones); Steps and HeapBytes are the
// cumulative execution work charged to the tenant's budgets.
type TenantStat struct {
	Requests  int64 `json:"requests"`
	Rejected  int64 `json:"rejected"`
	InFlight  int   `json:"in_flight"`
	Steps     int64 `json:"steps"`
	HeapBytes int64 `json:"heap_bytes"`
}

// tenantTable meters per-tenant budgets: a concurrent-request cap and
// token buckets for sustained steps/sec and modeled heap-bytes/sec.
// Buckets hold at most one second of rate (the burst), start full, and
// are debited with the actual work a request performed after it
// finishes — a debt model, so one oversized request pushes the bucket
// negative and the tenant is rejected until the deficit refills. An
// empty tenant name is exempt (single-tenant/CLI usage); zero-valued
// limits are unlimited.
type tenantTable struct {
	mu        sync.Mutex
	maxConc   int     // concurrent requests per tenant; 0 = unlimited
	stepsRate float64 // steps per second; 0 = unlimited
	heapRate  float64 // modeled heap bytes per second; 0 = unlimited
	m         map[string]*tenantState
}

type tenantState struct {
	inflight   int
	stepsTok   float64
	heapTok    float64
	lastRefill time.Time

	requests int64
	rejected int64
	steps    int64
	heap     int64
}

func newTenantTable(cfg Config) *tenantTable {
	return &tenantTable{
		maxConc:   cfg.TenantMaxConcurrent,
		stepsRate: float64(cfg.TenantStepsPerSec),
		heapRate:  float64(cfg.TenantHeapPerSec),
		m:         map[string]*tenantState{},
	}
}

// state returns (creating if needed) the tenant's bucket state. Callers
// hold t.mu.
func (t *tenantTable) state(name string, now time.Time) *tenantState {
	ts := t.m[name]
	if ts == nil {
		ts = &tenantState{stepsTok: t.stepsRate, heapTok: t.heapRate, lastRefill: now}
		t.m[name] = ts
	}
	return ts
}

// refill credits the buckets for wall-clock time elapsed since the last
// refill, capped at one second of burst. Callers hold t.mu.
func (t *tenantTable) refill(ts *tenantState, now time.Time) {
	dt := now.Sub(ts.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	ts.lastRefill = now
	if t.stepsRate > 0 {
		ts.stepsTok = math.Min(t.stepsRate, ts.stepsTok+dt*t.stepsRate)
	}
	if t.heapRate > 0 {
		ts.heapTok = math.Min(t.heapRate, ts.heapTok+dt*t.heapRate)
	}
}

// admit meters one request for the tenant. On success it returns the
// in-flight release func; on rejection it returns the quota that fired
// ("concurrency", "steps", or "heap") and a Retry-After hint derived
// from the bucket deficit and refill rate.
func (t *tenantTable) admit(name string) (release func(), retryAfter int, quota string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	ts := t.state(name, now)
	t.refill(ts, now)
	ts.requests++
	switch {
	case t.maxConc > 0 && ts.inflight >= t.maxConc:
		ts.rejected++
		return nil, 1, "concurrency", false
	case t.stepsRate > 0 && ts.stepsTok <= 0:
		ts.rejected++
		return nil, deficitSecs(-ts.stepsTok, t.stepsRate), "steps", false
	case t.heapRate > 0 && ts.heapTok <= 0:
		ts.rejected++
		return nil, deficitSecs(-ts.heapTok, t.heapRate), "heap", false
	}
	ts.inflight++
	return func() {
		t.mu.Lock()
		ts.inflight--
		t.mu.Unlock()
	}, 0, "", true
}

// charge debits the tenant's buckets with the work a finished request
// actually performed.
func (t *tenantTable) charge(name string, steps, heap int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	ts := t.state(name, now)
	t.refill(ts, now)
	ts.steps += steps
	ts.heap += heap
	if t.stepsRate > 0 {
		ts.stepsTok -= float64(steps)
	}
	if t.heapRate > 0 {
		ts.heapTok -= float64(heap)
	}
}

// snapshot returns the per-tenant counters for /stats; nil when no
// tenant has been seen.
func (t *tenantTable) snapshot() map[string]TenantStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return nil
	}
	out := make(map[string]TenantStat, len(t.m))
	for name, ts := range t.m {
		out[name] = TenantStat{
			Requests:  ts.requests,
			Rejected:  ts.rejected,
			InFlight:  ts.inflight,
			Steps:     ts.steps,
			HeapBytes: ts.heap,
		}
	}
	return out
}

// Package types implements the Virgil III type system of the paper:
// primitive, array, tuple, function, and class type constructors, with
// tuple covariance and function parameter-contravariance / return-
// covariance (§2.5), interning, substitution, subtyping, least upper
// bounds, and cast/query relations.
package types

import (
	"fmt"
	"strings"
	"sync"
)

// Type is the interface satisfied by all Virgil-core types. Types are
// interned by a Cache, so two structurally equal types obtained from the
// same Cache are pointer-equal.
type Type interface {
	String() string
	isType()
}

// PrimKind enumerates the built-in primitive types.
type PrimKind int

// The primitive kinds of Virgil-core. Null is the type of the `null`
// literal, assignable to every reference type.
const (
	KindVoid PrimKind = iota
	KindBool
	KindByte
	KindInt
	KindNull
)

// Prim is a primitive type. The five values are singletons.
type Prim struct{ Kind PrimKind }

func (p *Prim) isType() {}

func (p *Prim) String() string {
	switch p.Kind {
	case KindVoid:
		return "void"
	case KindBool:
		return "bool"
	case KindByte:
		return "byte"
	case KindInt:
		return "int"
	case KindNull:
		return "null"
	}
	return "?prim"
}

// Tuple is a tuple type with two or more elements. Zero-element tuples
// are void and one-element tuples are the element itself; the Cache
// enforces those degenerate equivalences (§2.3).
type Tuple struct{ Elems []Type }

func (t *Tuple) isType() {}

func (t *Tuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Func is a function type Param -> Ret.
type Func struct {
	Param Type
	Ret   Type
}

func (f *Func) isType() {}

func (f *Func) String() string {
	p := f.Param.String()
	// Parenthesize a function parameter to preserve right-associativity.
	if _, ok := f.Param.(*Func); ok {
		p = "(" + p + ")"
	}
	return p + " -> " + f.Ret.String()
}

// Array is the invariant built-in Array<T> constructor.
type Array struct{ Elem Type }

func (a *Array) isType() {}

func (a *Array) String() string { return "Array<" + a.Elem.String() + ">" }

// TypeParamDef is the declaration of a type parameter (on a class or a
// method). Each declaration site owns distinct defs; they are compared
// by pointer identity.
type TypeParamDef struct {
	Name  string
	Index int
	// Owner is an opaque reference to the declaring entity (an AST or IR
	// node); the types package never inspects it.
	Owner any
	id    int // interning key, assigned by the Cache
}

// TypeParam is a use of a type parameter as a type.
type TypeParam struct{ Def *TypeParamDef }

func (t *TypeParam) isType() {}

func (t *TypeParam) String() string { return t.Def.Name }

// ClassDef describes a class declaration: its name, type parameters and
// (instantiated) parent. The Decl field points back to the front end's
// declaration node and is opaque here.
type ClassDef struct {
	Name       string
	TypeParams []*TypeParamDef
	// ParentType is the declared parent class type; it may mention the
	// class's own type parameters. Nil for a hierarchy root.
	ParentType *Class
	Decl       any
	id         int
}

// Class is an instantiation of a ClassDef with type arguments (possibly
// open, i.e. mentioning type parameters).
type Class struct {
	Def  *ClassDef
	Args []Type
}

func (c *Class) isType() {}

func (c *Class) String() string {
	if len(c.Args) == 0 {
		return c.Def.Name
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Def.Name + "<" + strings.Join(parts, ", ") + ">"
}

// EnumDef describes an enumerated type declaration (§6.1 lists enums as
// the highest-priority future feature; this implements a minimal
// design: a closed set of named cases, value semantics, tag and name
// accessors, and the four universal operators).
type EnumDef struct {
	Name  string
	Cases []string
	Decl  any
	id    int
}

// Enum is the type of an enum's values. One interned instance per def.
type Enum struct{ Def *EnumDef }

func (e *Enum) isType() {}

func (e *Enum) String() string { return e.Def.Name }

// Cache interns types so structural equality is pointer equality.
//
// All exported methods are safe for concurrent use: the parallel
// pipeline stages (lower bodies, mono body copies, normalization,
// optimization, verification) share one cache, so every method that
// reads or writes the interning tables takes mu and delegates to an
// unexported, lock-free twin. The unexported twins may call each other
// but never an exported method — the lock is not reentrant.
type Cache struct {
	mu                              sync.Mutex
	void, boolT, byteT, intT, nullT *Prim
	tuples                          map[string]*Tuple
	enums                           map[*EnumDef]*Enum
	funcs                           map[[2]Type]*Func
	arrays                          map[Type]*Array
	classes                         map[string]*Class
	params                          map[*TypeParamDef]*TypeParam
	nextID                          int
}

// NewCache returns a fresh interning cache with the primitive singletons.
func NewCache() *Cache {
	return &Cache{
		void:    &Prim{Kind: KindVoid},
		boolT:   &Prim{Kind: KindBool},
		byteT:   &Prim{Kind: KindByte},
		intT:    &Prim{Kind: KindInt},
		nullT:   &Prim{Kind: KindNull},
		tuples:  map[string]*Tuple{},
		enums:   map[*EnumDef]*Enum{},
		funcs:   map[[2]Type]*Func{},
		arrays:  map[Type]*Array{},
		classes: map[string]*Class{},
		params:  map[*TypeParamDef]*TypeParam{},
	}
}

// Void returns the void type (the empty tuple).
func (c *Cache) Void() Type { return c.void }

// Bool returns the bool type.
func (c *Cache) Bool() Type { return c.boolT }

// Byte returns the byte type.
func (c *Cache) Byte() Type { return c.byteT }

// Int returns the int type.
func (c *Cache) Int() Type { return c.intT }

// Null returns the type of the null literal.
func (c *Cache) Null() Type { return c.nullT }

// String returns the string type, an alias for Array<byte>.
func (c *Cache) String() Type { return c.ArrayOf(c.byteT) }

// lock acquires the interning lock for one exported entry point. The
// unexported twins below assume it is held.
func (c *Cache) lock() func() {
	c.mu.Lock()
	return c.mu.Unlock
}

func (c *Cache) key(t Type) string {
	switch t := t.(type) {
	case *Prim:
		return t.String()
	case *Tuple:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = c.key(e)
		}
		return "(" + strings.Join(parts, ",") + ")"
	case *Func:
		return "F[" + c.key(t.Param) + ">" + c.key(t.Ret) + "]"
	case *Array:
		return "A[" + c.key(t.Elem) + "]"
	case *TypeParam:
		return fmt.Sprintf("P%d", t.Def.id)
	case *Enum:
		return fmt.Sprintf("E%d", t.Def.id)
	case *Class:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = c.key(a)
		}
		return fmt.Sprintf("C%d<%s>", t.Def.id, strings.Join(parts, ","))
	}
	panic("types: unknown type in key")
}

// TupleOf interns a tuple type, applying the degenerate equivalences:
// zero elements is void, one element is the element itself.
func (c *Cache) TupleOf(elems []Type) Type {
	defer c.lock()()
	return c.tupleOf(elems)
}

func (c *Cache) tupleOf(elems []Type) Type {
	switch len(elems) {
	case 0:
		return c.void
	case 1:
		return elems[0]
	}
	cp := make([]Type, len(elems))
	copy(cp, elems)
	t := &Tuple{Elems: cp}
	k := c.key(t)
	if got, ok := c.tuples[k]; ok {
		return got
	}
	c.tuples[k] = t
	return t
}

// FuncOf interns the function type param -> ret.
func (c *Cache) FuncOf(param, ret Type) *Func {
	defer c.lock()()
	return c.funcOf(param, ret)
}

func (c *Cache) funcOf(param, ret Type) *Func {
	k := [2]Type{param, ret}
	if got, ok := c.funcs[k]; ok {
		return got
	}
	f := &Func{Param: param, Ret: ret}
	c.funcs[k] = f
	return f
}

// ArrayOf interns the array type Array<elem>.
func (c *Cache) ArrayOf(elem Type) *Array {
	defer c.lock()()
	return c.arrayOf(elem)
}

func (c *Cache) arrayOf(elem Type) *Array {
	if got, ok := c.arrays[elem]; ok {
		return got
	}
	a := &Array{Elem: elem}
	c.arrays[elem] = a
	return a
}

// NewEnumDef allocates a fresh enum definition.
func (c *Cache) NewEnumDef(name string, cases []string, decl any) *EnumDef {
	defer c.lock()()
	c.nextID++
	return &EnumDef{Name: name, Cases: cases, Decl: decl, id: c.nextID}
}

// EnumOf interns the type of an enum definition's values.
func (c *Cache) EnumOf(def *EnumDef) *Enum {
	defer c.lock()()
	if e, ok := c.enums[def]; ok {
		return e
	}
	e := &Enum{Def: def}
	c.enums[def] = e
	return e
}

// NewTypeParamDef allocates a fresh type parameter declaration.
func (c *Cache) NewTypeParamDef(name string, index int, owner any) *TypeParamDef {
	defer c.lock()()
	c.nextID++
	return &TypeParamDef{Name: name, Index: index, Owner: owner, id: c.nextID}
}

// ParamRef interns the type-use of a type parameter declaration.
func (c *Cache) ParamRef(def *TypeParamDef) *TypeParam {
	defer c.lock()()
	return c.paramRef(def)
}

func (c *Cache) paramRef(def *TypeParamDef) *TypeParam {
	if got, ok := c.params[def]; ok {
		return got
	}
	t := &TypeParam{Def: def}
	c.params[def] = t
	return t
}

// NewClassDef allocates a fresh class definition.
func (c *Cache) NewClassDef(name string, params []*TypeParamDef, decl any) *ClassDef {
	defer c.lock()()
	c.nextID++
	return &ClassDef{Name: name, TypeParams: params, Decl: decl, id: c.nextID}
}

// ClassOf interns the instantiation def<args>. len(args) must equal
// len(def.TypeParams).
func (c *Cache) ClassOf(def *ClassDef, args []Type) *Class {
	defer c.lock()()
	return c.classOf(def, args)
}

func (c *Cache) classOf(def *ClassDef, args []Type) *Class {
	if len(args) != len(def.TypeParams) {
		panic(fmt.Sprintf("types: class %s expects %d args, got %d", def.Name, len(def.TypeParams), len(args)))
	}
	cp := make([]Type, len(args))
	copy(cp, args)
	t := &Class{Def: def, Args: cp}
	k := c.key(t)
	if got, ok := c.classes[k]; ok {
		return got
	}
	c.classes[k] = t
	return t
}

// SelfType returns def instantiated with its own type parameters, i.e.
// the type of `this` inside the class body.
func (c *Cache) SelfType(def *ClassDef) *Class {
	defer c.lock()()
	args := make([]Type, len(def.TypeParams))
	for i, p := range def.TypeParams {
		args[i] = c.paramRef(p)
	}
	return c.classOf(def, args)
}

// Subst applies the type-parameter bindings in env to t, interning the
// result. Unbound parameters are left in place.
func (c *Cache) Subst(t Type, env map[*TypeParamDef]Type) Type {
	if len(env) == 0 {
		return t // closed substitution: no cache access, no lock needed
	}
	defer c.lock()()
	return c.subst(t, env)
}

func (c *Cache) subst(t Type, env map[*TypeParamDef]Type) Type {
	if len(env) == 0 {
		return t
	}
	switch t := t.(type) {
	case *Prim, *Enum:
		return t
	case *TypeParam:
		if r, ok := env[t.Def]; ok {
			return r
		}
		return t
	case *Tuple:
		elems := make([]Type, len(t.Elems))
		changed := false
		for i, e := range t.Elems {
			elems[i] = c.subst(e, env)
			changed = changed || elems[i] != e
		}
		if !changed {
			return t
		}
		return c.tupleOf(elems)
	case *Func:
		p := c.subst(t.Param, env)
		r := c.subst(t.Ret, env)
		if p == t.Param && r == t.Ret {
			return t
		}
		return c.funcOf(p, r)
	case *Array:
		e := c.subst(t.Elem, env)
		if e == t.Elem {
			return t
		}
		return c.arrayOf(e)
	case *Class:
		args := make([]Type, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = c.subst(a, env)
			changed = changed || args[i] != a
		}
		if !changed {
			return t
		}
		return c.classOf(t.Def, args)
	}
	panic("types: unknown type in Subst")
}

// ParentOf returns the instantiated parent class type of cl, or nil when
// cl's class is a hierarchy root. The parent's type arguments are
// substituted with cl's own arguments.
func (c *Cache) ParentOf(cl *Class) *Class {
	if cl.Def.ParentType == nil {
		return nil
	}
	defer c.lock()()
	return c.parentOf(cl)
}

func (c *Cache) parentOf(cl *Class) *Class {
	pt := cl.Def.ParentType
	if pt == nil {
		return nil
	}
	env := BindParams(cl.Def.TypeParams, cl.Args)
	return c.subst(pt, env).(*Class)
}

// BindParams zips type parameter defs with type arguments into a
// substitution environment.
func BindParams(params []*TypeParamDef, args []Type) map[*TypeParamDef]Type {
	env := make(map[*TypeParamDef]Type, len(params))
	for i, p := range params {
		env[p] = args[i]
	}
	return env
}

// IsRefType reports whether t admits the null value (classes, arrays and
// function values are references; primitives and tuples are not).
func IsRefType(t Type) bool {
	switch t.(type) {
	case *Class, *Array, *Func:
		return true
	}
	return false
}

// HasTypeParams reports whether t mentions any type parameter (is open).
func HasTypeParams(t Type) bool {
	switch t := t.(type) {
	case *Prim, *Enum:
		return false
	case *TypeParam:
		return true
	case *Tuple:
		for _, e := range t.Elems {
			if HasTypeParams(e) {
				return true
			}
		}
		return false
	case *Func:
		return HasTypeParams(t.Param) || HasTypeParams(t.Ret)
	case *Array:
		return HasTypeParams(t.Elem)
	case *Class:
		for _, a := range t.Args {
			if HasTypeParams(a) {
				return true
			}
		}
		return false
	}
	panic("types: unknown type in HasTypeParams")
}

// IsSubtype reports sub <: sup under the paper's rules (§2.5):
// tuples are covariant elementwise with equal arity; functions are
// contravariant in the parameter and covariant in the return; arrays and
// class type arguments are invariant; class subtyping follows the parent
// chain; null is a subtype of every reference type.
func (c *Cache) IsSubtype(sub, sup Type) bool {
	defer c.lock()()
	return c.isSubtype(sub, sup)
}

func (c *Cache) isSubtype(sub, sup Type) bool {
	if sub == sup {
		return true
	}
	if p, ok := sub.(*Prim); ok && p.Kind == KindNull {
		return IsRefType(sup) || isNull(sup)
	}
	switch sup := sup.(type) {
	case *Tuple:
		st, ok := sub.(*Tuple)
		if !ok || len(st.Elems) != len(sup.Elems) {
			return false
		}
		for i := range sup.Elems {
			if !c.isSubtype(st.Elems[i], sup.Elems[i]) {
				return false
			}
		}
		return true
	case *Func:
		sf, ok := sub.(*Func)
		if !ok {
			return false
		}
		return c.isSubtype(sup.Param, sf.Param) && c.isSubtype(sf.Ret, sup.Ret)
	case *Class:
		sc, ok := sub.(*Class)
		if !ok {
			return false
		}
		for w := sc; w != nil; w = c.parentOf(w) {
			if w == sup {
				return true
			}
		}
		return false
	}
	return false
}

func isNull(t Type) bool {
	p, ok := t.(*Prim)
	return ok && p.Kind == KindNull
}

// IsAssignable reports whether a value of type from may be assigned to a
// location of type to. This is subtyping plus implicit byte-to-int
// promotion disabled: Virgil has no implicit conversions, so it is
// exactly subtyping.
func (c *Cache) IsAssignable(from, to Type) bool { return c.IsSubtype(from, to) }

// Lub computes a least upper bound of a and b for ternary-expression
// typing: equal types, null vs reference, a common class ancestor, or
// structural lubs through tuples/functions. Returns nil when none exists.
func (c *Cache) Lub(a, b Type) Type {
	defer c.lock()()
	return c.lub(a, b)
}

func (c *Cache) lub(a, b Type) Type {
	if a == b {
		return a
	}
	if isNull(a) && IsRefType(b) {
		return b
	}
	if isNull(b) && IsRefType(a) {
		return a
	}
	switch at := a.(type) {
	case *Class:
		bt, ok := b.(*Class)
		if !ok {
			return nil
		}
		// Find the first ancestor of a that is a supertype of b.
		for w := at; w != nil; w = c.parentOf(w) {
			if c.isSubtype(bt, w) {
				return w
			}
		}
		return nil
	case *Tuple:
		bt, ok := b.(*Tuple)
		if !ok || len(at.Elems) != len(bt.Elems) {
			return nil
		}
		elems := make([]Type, len(at.Elems))
		for i := range at.Elems {
			e := c.lub(at.Elems[i], bt.Elems[i])
			if e == nil {
				return nil
			}
			elems[i] = e
		}
		return c.tupleOf(elems)
	case *Func:
		bt, ok := b.(*Func)
		if !ok {
			return nil
		}
		p := c.glb(at.Param, bt.Param)
		r := c.lub(at.Ret, bt.Ret)
		if p == nil || r == nil {
			return nil
		}
		return c.funcOf(p, r)
	}
	return nil
}

// Glb computes a greatest lower bound (dual of Lub), used for function
// parameter positions.
func (c *Cache) Glb(a, b Type) Type {
	defer c.lock()()
	return c.glb(a, b)
}

func (c *Cache) glb(a, b Type) Type {
	if a == b {
		return a
	}
	if isNull(a) || isNull(b) {
		if IsRefType(a) || IsRefType(b) {
			return c.nullT
		}
		return nil
	}
	switch at := a.(type) {
	case *Class:
		bt, ok := b.(*Class)
		if !ok {
			return nil
		}
		if c.isSubtype(at, bt) {
			return at
		}
		if c.isSubtype(bt, at) {
			return bt
		}
		return nil
	case *Tuple:
		bt, ok := b.(*Tuple)
		if !ok || len(at.Elems) != len(bt.Elems) {
			return nil
		}
		elems := make([]Type, len(at.Elems))
		for i := range at.Elems {
			e := c.glb(at.Elems[i], bt.Elems[i])
			if e == nil {
				return nil
			}
			elems[i] = e
		}
		return c.tupleOf(elems)
	case *Func:
		bt, ok := b.(*Func)
		if !ok {
			return nil
		}
		p := c.lub(at.Param, bt.Param)
		r := c.glb(at.Ret, bt.Ret)
		if p == nil || r == nil {
			return nil
		}
		return c.funcOf(p, r)
	}
	return nil
}

// CastRel classifies the outcome of a cast or query between two types.
type CastRel int

// Cast relations: True means the cast always succeeds (no check needed);
// Dynamic means a runtime check decides; False means it can never
// succeed and the front end rejects it where both types are closed and
// provably unrelated (§2.2).
const (
	CastTrue CastRel = iota
	CastDynamic
	CastFalse
)

// Castable classifies a cast/query from type `from` to type `to`. Casts
// between numeric primitives are conversions; class casts are dynamic
// checks along a shared hierarchy; tuple casts distribute elementwise;
// open types always yield CastDynamic since instantiation decides (§2.2).
func (c *Cache) Castable(from, to Type) CastRel {
	defer c.lock()()
	return c.castable(from, to)
}

func (c *Cache) castable(from, to Type) CastRel {
	if HasTypeParams(from) || HasTypeParams(to) {
		return CastDynamic
	}
	if from == to {
		return CastTrue
	}
	ff, fok := from.(*Prim)
	tt, tok := to.(*Prim)
	if fok && tok {
		// byte -> int widens and always succeeds; int -> byte is a
		// dynamic range check. All other distinct prim pairs fail.
		if ff.Kind == KindByte && tt.Kind == KindInt {
			return CastTrue
		}
		if ff.Kind == KindInt && tt.Kind == KindByte {
			return CastDynamic
		}
		if ff.Kind == KindNull {
			return CastFalse
		}
		return CastFalse
	}
	if fok && ff.Kind == KindNull {
		if IsRefType(to) {
			return CastTrue
		}
		return CastFalse
	}
	switch ft := from.(type) {
	case *Tuple:
		tt, ok := to.(*Tuple)
		if !ok || len(ft.Elems) != len(tt.Elems) {
			return CastFalse
		}
		rel := CastTrue
		for i := range ft.Elems {
			switch c.castable(ft.Elems[i], tt.Elems[i]) {
			case CastFalse:
				return CastFalse
			case CastDynamic:
				rel = CastDynamic
			}
		}
		return rel
	case *Class:
		tc, ok := to.(*Class)
		if !ok {
			return CastFalse
		}
		if c.isSubtype(ft, tc) {
			return CastTrue
		}
		if c.isSubtype(tc, ft) {
			return CastDynamic // downcast
		}
		return CastFalse
	case *Func:
		tf, ok := to.(*Func)
		if !ok {
			return CastFalse
		}
		if c.isSubtype(ft, tf) {
			return CastTrue
		}
		// A function value's dynamic type may be a subtype of its static
		// type, so a cast to an unrelated-but-compatible function type is
		// a dynamic check when the target is a subtype direction;
		// otherwise it can never succeed.
		if c.isSubtype(tf, ft) {
			return CastDynamic
		}
		return CastFalse
	case *Array:
		ta, ok := to.(*Array)
		if !ok {
			return CastFalse
		}
		if ft.Elem == ta.Elem {
			return CastTrue
		}
		return CastFalse
	}
	return CastFalse
}

// Size returns the number of type-constructor nodes in t, used by the
// monomorphizer to detect runaway (polymorphically recursive)
// instantiations before their representations grow exponentially.
func Size(t Type) int {
	switch t := t.(type) {
	case *Prim, *TypeParam, *Enum:
		return 1
	case *Tuple:
		n := 1
		for _, e := range t.Elems {
			n += Size(e)
		}
		return n
	case *Func:
		return 1 + Size(t.Param) + Size(t.Ret)
	case *Array:
		return 1 + Size(t.Elem)
	case *Class:
		n := 1
		for _, a := range t.Args {
			n += Size(a)
		}
		return n
	}
	return 1
}

// Flatten appends the scalar expansion of t (§4.2) to out and returns
// it: tuples expand recursively, void expands to nothing, arrays of
// tuples expand to parallel arrays, and everything else is itself.
// Arrays of void are kept as a length-only array.
func Flatten(c *Cache, t Type, out []Type) []Type {
	switch t := t.(type) {
	case *Prim:
		if t.Kind == KindVoid {
			return out
		}
		return append(out, t)
	case *Tuple:
		for _, e := range t.Elems {
			out = Flatten(c, e, out)
		}
		return out
	case *Array:
		elems := Flatten(c, t.Elem, nil)
		if len(elems) == 0 {
			// Array<void>: keep a single length-only array (§4.2).
			return append(out, t)
		}
		for _, e := range elems {
			out = append(out, c.ArrayOf(e))
		}
		return out
	default:
		return append(out, t)
	}
}

package types

// Inference implements the paper's best-effort type-argument inference
// (§2.4): the type parameters of the called class or method act as
// unification variables; parameter types are matched against argument
// types, and conflicting bindings are merged with least upper bounds
// where possible.
type Inference struct {
	c    *Cache
	vars map[*TypeParamDef]bool
	bind map[*TypeParamDef]Type
}

// NewInference creates an inference over the given inferable parameters.
func NewInference(c *Cache, params []*TypeParamDef) *Inference {
	vars := make(map[*TypeParamDef]bool, len(params))
	for _, p := range params {
		vars[p] = true
	}
	return &Inference{c: c, vars: vars, bind: map[*TypeParamDef]Type{}}
}

// Unify matches pattern (which may mention inferable parameters) against
// actual (a closed type, or null), starting in covariant polarity (the
// argument must be a subtype of the parameter). It reports false on a
// hard structural conflict. Null arguments contribute no constraints.
func (inf *Inference) Unify(pattern, actual Type) bool {
	return inf.unify(pattern, actual, +1)
}

// unify tracks variance polarity: +1 covariant, -1 contravariant,
// 0 invariant. Bindings in covariant positions merge with least upper
// bounds; contravariant positions merge with greatest lower bounds
// (Animal -> void must infer A = Bat for apply(b, g), §3.6 o7);
// invariant positions require equal bindings.
func (inf *Inference) unify(pattern, actual Type, pol int) bool {
	if p, ok := actual.(*Prim); ok && p.Kind == KindNull {
		// null matches any reference-typed pattern without constraining.
		return true
	}
	switch pt := pattern.(type) {
	case *TypeParam:
		if !inf.vars[pt.Def] {
			// A fixed (outer) parameter: must match exactly.
			return pattern == actual
		}
		if prev, ok := inf.bind[pt.Def]; ok {
			if prev == actual {
				return true
			}
			var merged Type
			switch {
			case pol > 0:
				merged = inf.c.Lub(prev, actual)
			case pol < 0:
				merged = inf.c.Glb(prev, actual)
			default:
				// Invariant position: best-effort merge (the caller's
				// final assignability check validates the result), so
				// that e.g. List.new(Box.new(f), anyList) infers
				// List<Any> (k4).
				merged = inf.c.Lub(prev, actual)
				if merged == nil {
					merged = inf.c.Glb(prev, actual)
				}
			}
			if merged == nil {
				return false
			}
			inf.bind[pt.Def] = merged
			return true
		}
		inf.bind[pt.Def] = actual
		return true
	case *Prim:
		return pattern == actual
	case *Tuple:
		at, ok := actual.(*Tuple)
		if !ok || len(at.Elems) != len(pt.Elems) {
			return false
		}
		for i := range pt.Elems {
			if !inf.unify(pt.Elems[i], at.Elems[i], pol) {
				return false
			}
		}
		return true
	case *Func:
		af, ok := actual.(*Func)
		if !ok {
			return false
		}
		return inf.unify(pt.Param, af.Param, -pol) && inf.unify(pt.Ret, af.Ret, pol)
	case *Array:
		aa, ok := actual.(*Array)
		if !ok {
			return false
		}
		return inf.unify(pt.Elem, aa.Elem, 0)
	case *Class:
		ac, ok := actual.(*Class)
		if !ok {
			return false
		}
		// Walk the actual's parent chain to find the pattern's class.
		for w := ac; w != nil; w = inf.c.ParentOf(w) {
			if w.Def == pt.Def {
				for i := range pt.Args {
					if !inf.unify(pt.Args[i], w.Args[i], 0) {
						return false
					}
				}
				return true
			}
		}
		return false
	}
	return false
}

// Bindings returns the inferred assignment for params in order, and
// reports whether every parameter was bound.
func (inf *Inference) Bindings(params []*TypeParamDef) ([]Type, bool) {
	out := make([]Type, len(params))
	complete := true
	for i, p := range params {
		t, ok := inf.bind[p]
		if !ok {
			complete = false
			t = nil
		}
		out[i] = t
	}
	return out, complete
}

// Env returns the binding environment for substitution.
func (inf *Inference) Env() map[*TypeParamDef]Type { return inf.bind }

// CastLegal reports whether the front end accepts a cast from -> to.
// Casts whose outcome is statically known to fail are rejected when the
// types are provably unrelated (different constructors, or classes from
// unrelated hierarchies); same-class different-argument casts remain
// legal and simply fail at runtime, preserving reified instantiation
// tests like List<bool>.?(a) (d13-d14).
func (c *Cache) CastLegal(from, to Type) bool {
	if c.Castable(from, to) != CastFalse {
		return true
	}
	switch ft := from.(type) {
	case *Prim:
		tp, ok := to.(*Prim)
		if !ok {
			return false
		}
		// int <-> byte conversions are fine; others are rejected.
		numeric := func(k PrimKind) bool { return k == KindInt || k == KindByte }
		return numeric(ft.Kind) && numeric(tp.Kind)
	case *Class:
		tc, ok := to.(*Class)
		if !ok {
			return false
		}
		return c.root(ft.Def) == c.root(tc.Def)
	case *Tuple:
		tt, ok := to.(*Tuple)
		if !ok || len(tt.Elems) != len(ft.Elems) {
			return false
		}
		for i := range ft.Elems {
			if !c.CastLegal(ft.Elems[i], tt.Elems[i]) {
				return false
			}
		}
		return true
	case *Func:
		_, ok := to.(*Func)
		return ok
	case *Array:
		_, ok := to.(*Array)
		return ok
	}
	return false
}

func (c *Cache) root(def *ClassDef) *ClassDef {
	for def.ParentType != nil {
		def = def.ParentType.Def
	}
	return def
}

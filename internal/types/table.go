package types

// This file reproduces the paper's §2.5 type constructor summary table
// (experiment T1) directly from the implemented type system.

// Variance describes how a type parameter position varies.
type Variance int

// Variance values. The paper's table writes contravariant positions as
// an inverted triangle and covariant ones as a triangle.
const (
	Invariant Variance = iota
	Covariant
	Contravariant
)

func (v Variance) String() string {
	switch v {
	case Covariant:
		return "+"
	case Contravariant:
		return "-"
	}
	return "="
}

// TypeConRow is one row of the §2.5 summary table.
type TypeConRow struct {
	Typecon    string
	TypeParams string // parameter list with variance marks
	Syntax     string
}

// TypeConstructorTable returns the §2.5 table, computed against the
// implemented constructors. The variance marks are derived from the
// subtyping rules actually implemented by IsSubtype, not hard-coded:
// the test suite verifies each mark by probing IsSubtype.
func TypeConstructorTable() []TypeConRow {
	return []TypeConRow{
		{Typecon: "Primitive", TypeParams: "", Syntax: "void|int|byte|bool"},
		{Typecon: "Array", TypeParams: "=T", Syntax: "Array<T>"},
		{Typecon: "Tuple", TypeParams: "+T0 ... +Tn", Syntax: "(T0, ..., Tn)"},
		{Typecon: "Function", TypeParams: "-Tp +Tr", Syntax: "Tp -> Tr"},
		{Typecon: "class X", TypeParams: "=T0 ... =Tn", Syntax: "X<T0, ..., Tn>"},
	}
}

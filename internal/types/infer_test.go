package types

import "testing"

// inferEnv builds a cache with Animal <- Bat, a generic List class, and
// two inference variables A and B.
func inferEnv() (*Cache, *ClassDef, *ClassDef, *ClassDef, []*TypeParamDef) {
	tc := NewCache()
	animal := tc.NewClassDef("Animal", nil, nil)
	bat := tc.NewClassDef("Bat", nil, nil)
	bat.ParentType = tc.ClassOf(animal, nil)
	list := tc.NewClassDef("List", []*TypeParamDef{tc.NewTypeParamDef("T", 0, nil)}, nil)
	vars := []*TypeParamDef{tc.NewTypeParamDef("A", 0, nil), tc.NewTypeParamDef("B", 1, nil)}
	return tc, animal, bat, list, vars
}

func TestUnifySimpleBinding(t *testing.T) {
	tc, _, _, _, vars := inferEnv()
	inf := NewInference(tc, vars)
	a := tc.ParamRef(vars[0])
	if !inf.Unify(a, tc.Int()) {
		t.Fatal("A ~ int should unify")
	}
	bind, complete := inf.Bindings(vars[:1])
	if !complete || bind[0] != tc.Int() {
		t.Fatalf("A = %v", bind[0])
	}
}

func TestUnifyThroughConstructors(t *testing.T) {
	tc, _, bat, list, vars := inferEnv()
	a := tc.ParamRef(vars[0])
	bt := tc.ClassOf(bat, nil)
	inf := NewInference(tc, vars)
	// List<A> ~ List<Bat> binds A = Bat (d10').
	if !inf.Unify(tc.ClassOf(list, []Type{a}), tc.ClassOf(list, []Type{bt})) {
		t.Fatal("List<A> ~ List<Bat>")
	}
	// (A, int) ~ (Bat, int) is consistent.
	if !inf.Unify(tc.TupleOf([]Type{a, tc.Int()}), tc.TupleOf([]Type{bt, tc.Int()})) {
		t.Fatal("tuple unification")
	}
	bind, _ := inf.Bindings(vars[:1])
	if bind[0] != bt {
		t.Fatalf("A = %v, want Bat", bind[0])
	}
}

func TestUnifyContravariantMergesWithGlb(t *testing.T) {
	// The o7 case: A first binds Bat (from List<Bat>), then the
	// function argument Animal -> void must KEEP A = Bat because the
	// parameter position is contravariant.
	tc, animal, bat, list, vars := inferEnv()
	a := tc.ParamRef(vars[0])
	an, bt := tc.ClassOf(animal, nil), tc.ClassOf(bat, nil)
	v := tc.Void()
	inf := NewInference(tc, vars)
	if !inf.Unify(tc.ClassOf(list, []Type{a}), tc.ClassOf(list, []Type{bt})) {
		t.Fatal("step 1")
	}
	if !inf.Unify(tc.FuncOf(a, v), tc.FuncOf(an, v)) {
		t.Fatal("step 2")
	}
	bind, _ := inf.Bindings(vars[:1])
	if bind[0] != bt {
		t.Fatalf("A = %v, want Bat (contravariant GLB, §3.6)", bind[0])
	}
}

func TestUnifyCovariantMergesWithLub(t *testing.T) {
	// pair(batValue, animalValue) infers A = Animal.
	tc, animal, bat, _, vars := inferEnv()
	a := tc.ParamRef(vars[0])
	an, bt := tc.ClassOf(animal, nil), tc.ClassOf(bat, nil)
	inf := NewInference(tc, vars)
	if !inf.Unify(a, bt) || !inf.Unify(a, an) {
		t.Fatal("both unifications should succeed")
	}
	bind, _ := inf.Bindings(vars[:1])
	if bind[0] != an {
		t.Fatalf("A = %v, want Animal (covariant LUB)", bind[0])
	}
}

func TestUnifyNullUnconstrained(t *testing.T) {
	// List.new(0, null): null contributes no constraint (d10').
	tc, _, _, list, vars := inferEnv()
	a := tc.ParamRef(vars[0])
	inf := NewInference(tc, vars)
	if !inf.Unify(a, tc.Int()) {
		t.Fatal("head")
	}
	if !inf.Unify(tc.ClassOf(list, []Type{a}), tc.Null()) {
		t.Fatal("null tail must not constrain")
	}
	bind, complete := inf.Bindings(vars[:1])
	if !complete || bind[0] != tc.Int() {
		t.Fatalf("A = %v", bind[0])
	}
}

func TestUnifyHardConflicts(t *testing.T) {
	tc, _, _, list, vars := inferEnv()
	a := tc.ParamRef(vars[0])
	inf := NewInference(tc, vars)
	if !inf.Unify(a, tc.Int()) {
		t.Fatal("first binding")
	}
	if inf.Unify(a, tc.Bool()) {
		t.Error("int vs bool must conflict (no lub)")
	}
	inf2 := NewInference(tc, vars)
	if inf2.Unify(tc.ClassOf(list, []Type{a}), tc.Int()) {
		t.Error("List<A> ~ int must fail structurally")
	}
	inf3 := NewInference(tc, vars)
	if inf3.Unify(tc.TupleOf([]Type{a, a}), tc.TupleOf([]Type{tc.Int(), tc.Int(), tc.Int()})) {
		t.Error("tuple arity mismatch must fail")
	}
}

func TestUnifySubclassWalksToPattern(t *testing.T) {
	// Pattern Animal-typed class patterns accept subclass actuals by
	// walking the parent chain (generic parents).
	tc := NewCache()
	base := tc.NewClassDef("Base", []*TypeParamDef{tc.NewTypeParamDef("T", 0, nil)}, nil)
	sub := tc.NewClassDef("Sub", nil, nil)
	sub.ParentType = tc.ClassOf(base, []Type{tc.Int()})
	v := tc.NewTypeParamDef("A", 0, nil)
	inf := NewInference(tc, []*TypeParamDef{v})
	pattern := tc.ClassOf(base, []Type{tc.ParamRef(v)})
	if !inf.Unify(pattern, tc.ClassOf(sub, nil)) {
		t.Fatal("Base<A> ~ Sub (where Sub extends Base<int>)")
	}
	bind, _ := inf.Bindings([]*TypeParamDef{v})
	if bind[0] != tc.Int() {
		t.Fatalf("A = %v, want int", bind[0])
	}
}

func TestBindingsIncomplete(t *testing.T) {
	tc, _, _, _, vars := inferEnv()
	inf := NewInference(tc, vars)
	if !inf.Unify(tc.ParamRef(vars[0]), tc.Int()) {
		t.Fatal("bind A")
	}
	_, complete := inf.Bindings(vars) // B never mentioned
	if complete {
		t.Error("B unbound; Bindings must report incomplete")
	}
}

func TestFixedOuterParamsMustMatchExactly(t *testing.T) {
	// A type parameter that is NOT an inference variable (an enclosing
	// scope's parameter) only unifies with itself.
	tc, _, _, _, vars := inferEnv()
	outer := tc.NewTypeParamDef("T", 0, nil)
	ot := tc.ParamRef(outer)
	inf := NewInference(tc, vars)
	if !inf.Unify(ot, ot) {
		t.Error("outer param ~ itself")
	}
	if inf.Unify(ot, tc.Int()) {
		t.Error("outer param must not bind to int")
	}
}

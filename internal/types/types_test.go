package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func newEnv() (*Cache, *ClassDef, *ClassDef, *ClassDef) {
	tc := NewCache()
	animal := tc.NewClassDef("Animal", nil, nil)
	bat := tc.NewClassDef("Bat", nil, nil)
	bat.ParentType = tc.ClassOf(animal, nil)
	box := tc.NewClassDef("Box", []*TypeParamDef{tc.NewTypeParamDef("T", 0, nil)}, nil)
	return tc, animal, bat, box
}

func TestInterning(t *testing.T) {
	tc, animal, _, box := newEnv()
	if tc.TupleOf([]Type{tc.Int(), tc.Bool()}) != tc.TupleOf([]Type{tc.Int(), tc.Bool()}) {
		t.Error("tuple types not interned")
	}
	if tc.FuncOf(tc.Int(), tc.Bool()) != tc.FuncOf(tc.Int(), tc.Bool()) {
		t.Error("function types not interned")
	}
	if tc.ArrayOf(tc.Int()) != tc.ArrayOf(tc.Int()) {
		t.Error("array types not interned")
	}
	if tc.ClassOf(box, []Type{tc.Int()}) != tc.ClassOf(box, []Type{tc.Int()}) {
		t.Error("class types not interned")
	}
	if tc.ClassOf(animal, nil) != tc.ClassOf(animal, nil) {
		t.Error("monomorphic class types not interned")
	}
}

func TestTupleDegeneracies(t *testing.T) {
	tc := NewCache()
	// (§2.3): () == void, (T) == T.
	if tc.TupleOf(nil) != tc.Void() {
		t.Error("() should be void")
	}
	if tc.TupleOf([]Type{tc.Int()}) != tc.Int() {
		t.Error("(int) should be int")
	}
	// Nesting is preserved: ((a, b), c) != (a, b, c).
	ab := tc.TupleOf([]Type{tc.Int(), tc.Int()})
	nested := tc.TupleOf([]Type{ab, tc.Int()})
	flat := tc.TupleOf([]Type{tc.Int(), tc.Int(), tc.Int()})
	if nested == flat {
		t.Error("((int, int), int) must differ from (int, int, int)")
	}
}

func TestTypeStrings(t *testing.T) {
	tc, _, _, box := newEnv()
	cases := []struct {
		t    Type
		want string
	}{
		{tc.Int(), "int"},
		{tc.Void(), "void"},
		{tc.TupleOf([]Type{tc.Int(), tc.Bool()}), "(int, bool)"},
		{tc.FuncOf(tc.Int(), tc.Bool()), "int -> bool"},
		{tc.FuncOf(tc.FuncOf(tc.Int(), tc.Int()), tc.Int()), "(int -> int) -> int"},
		{tc.FuncOf(tc.Int(), tc.FuncOf(tc.Int(), tc.Int())), "int -> int -> int"},
		{tc.ArrayOf(tc.Byte()), "Array<byte>"},
		{tc.ClassOf(box, []Type{tc.TupleOf([]Type{tc.Int(), tc.Int()})}), "Box<(int, int)>"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSubtypingVariance(t *testing.T) {
	tc, animal, bat, box := newEnv()
	an := tc.ClassOf(animal, nil)
	bt := tc.ClassOf(bat, nil)
	v := tc.Void()

	if !tc.IsSubtype(bt, an) {
		t.Error("Bat <: Animal")
	}
	if tc.IsSubtype(an, bt) {
		t.Error("Animal </: Bat")
	}
	// Tuples are covariant (§2.3).
	tb := tc.TupleOf([]Type{bt, tc.Int()})
	ta := tc.TupleOf([]Type{an, tc.Int()})
	if !tc.IsSubtype(tb, ta) {
		t.Error("(Bat, int) <: (Animal, int)")
	}
	if tc.IsSubtype(ta, tb) {
		t.Error("(Animal, int) </: (Bat, int)")
	}
	// Functions: contravariant param, covariant return (§2.2).
	fAn := tc.FuncOf(an, v)
	fBt := tc.FuncOf(bt, v)
	if !tc.IsSubtype(fAn, fBt) {
		t.Error("Animal -> void <: Bat -> void (o7)")
	}
	if tc.IsSubtype(fBt, fAn) {
		t.Error("Bat -> void </: Animal -> void")
	}
	rAn := tc.FuncOf(v, an)
	rBt := tc.FuncOf(v, bt)
	if !tc.IsSubtype(rBt, rAn) {
		t.Error("void -> Bat <: void -> Animal")
	}
	// Arrays and class args are invariant.
	if tc.IsSubtype(tc.ArrayOf(bt), tc.ArrayOf(an)) {
		t.Error("Array<Bat> </: Array<Animal>")
	}
	if tc.IsSubtype(tc.ClassOf(box, []Type{bt}), tc.ClassOf(box, []Type{an})) {
		t.Error("Box<Bat> </: Box<Animal> (invariant class args, §3.6)")
	}
	// Null is a subtype of every reference type and of no value type.
	if !tc.IsSubtype(tc.Null(), an) || !tc.IsSubtype(tc.Null(), fAn) || !tc.IsSubtype(tc.Null(), tc.ArrayOf(v)) {
		t.Error("null <: reference types")
	}
	if tc.IsSubtype(tc.Null(), tc.Int()) || tc.IsSubtype(tc.Null(), tb) {
		t.Error("null </: value types")
	}
	// Tuples of different arity are unrelated (§2.3 footnote 2).
	if tc.IsSubtype(tc.TupleOf([]Type{bt, bt, bt}), ta) {
		t.Error("longer tuples are not subtypes of shorter tuples")
	}
}

func TestLubGlb(t *testing.T) {
	tc, animal, bat, _ := newEnv()
	an := tc.ClassOf(animal, nil)
	bt := tc.ClassOf(bat, nil)
	if tc.Lub(bt, an) != an || tc.Lub(an, bt) != an {
		t.Error("Lub(Bat, Animal) = Animal")
	}
	if tc.Glb(bt, an) != bt || tc.Glb(an, bt) != bt {
		t.Error("Glb(Bat, Animal) = Bat")
	}
	if tc.Lub(tc.Null(), an) != an {
		t.Error("Lub(null, Animal) = Animal")
	}
	if tc.Lub(tc.Int(), an) != nil {
		t.Error("Lub(int, Animal) undefined")
	}
	// Structural lubs through tuples and functions.
	v := tc.Void()
	got := tc.Lub(tc.TupleOf([]Type{bt, tc.Int()}), tc.TupleOf([]Type{an, tc.Int()}))
	if got != tc.TupleOf([]Type{an, tc.Int()}) {
		t.Errorf("tuple lub = %v", got)
	}
	fg := tc.Lub(tc.FuncOf(an, v), tc.FuncOf(bt, v))
	if fg != tc.FuncOf(bt, v) {
		t.Errorf("function lub = %v (param glb)", fg)
	}
}

func TestCastable(t *testing.T) {
	tc, animal, bat, box := newEnv()
	an := tc.ClassOf(animal, nil)
	bt := tc.ClassOf(bat, nil)
	cases := []struct {
		from, to Type
		want     CastRel
	}{
		{tc.Int(), tc.Int(), CastTrue},
		{tc.Byte(), tc.Int(), CastTrue},
		{tc.Int(), tc.Byte(), CastDynamic},
		{tc.Int(), tc.Bool(), CastFalse},
		{bt, an, CastTrue},
		{an, bt, CastDynamic},
		{an, tc.Int(), CastFalse},
		{tc.ClassOf(box, []Type{tc.Int()}), tc.ClassOf(box, []Type{tc.Bool()}), CastFalse},
		{tc.TupleOf([]Type{bt, tc.Byte()}), tc.TupleOf([]Type{an, tc.Int()}), CastTrue},
		{tc.TupleOf([]Type{an, tc.Int()}), tc.TupleOf([]Type{bt, tc.Byte()}), CastDynamic},
		{tc.TupleOf([]Type{tc.Int(), tc.Int()}), tc.TupleOf([]Type{tc.Int(), tc.Int(), tc.Int()}), CastFalse},
	}
	for _, c := range cases {
		if got := tc.Castable(c.from, c.to); got != c.want {
			t.Errorf("Castable(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	// Open types are always dynamic (§2.2 parametricity violation).
	tp := tc.ParamRef(box.TypeParams[0])
	if tc.Castable(tp, tc.Int()) != CastDynamic {
		t.Error("casts involving type parameters are dynamic")
	}
}

func TestCastLegal(t *testing.T) {
	tc, animal, bat, box := newEnv()
	an := tc.ClassOf(animal, nil)
	other := tc.NewClassDef("Other", nil, nil)
	ot := tc.ClassOf(other, nil)
	if !tc.CastLegal(tc.Int(), tc.Byte()) || !tc.CastLegal(tc.Byte(), tc.Int()) {
		t.Error("numeric conversions are legal")
	}
	if tc.CastLegal(tc.Int(), tc.Bool()) {
		t.Error("int -> bool is rejected")
	}
	if tc.CastLegal(an, tc.Int()) {
		t.Error("class -> prim is rejected (§2.2)")
	}
	if tc.CastLegal(an, ot) {
		t.Error("unrelated hierarchies are rejected")
	}
	if !tc.CastLegal(an, tc.ClassOf(bat, nil)) {
		t.Error("downcasts along a hierarchy are legal")
	}
	// Same class, different arguments: legal (reified queries d13-d14).
	if !tc.CastLegal(tc.ClassOf(box, []Type{tc.Int()}), tc.ClassOf(box, []Type{tc.Bool()})) {
		t.Error("Box<int> -> Box<bool> casts are legal (they just fail)")
	}
}

func TestSubstitution(t *testing.T) {
	tc, _, _, box := newEnv()
	tp := box.TypeParams[0]
	tref := tc.ParamRef(tp)
	open := tc.FuncOf(tc.TupleOf([]Type{tref, tc.Int()}), tc.ArrayOf(tref))
	env := map[*TypeParamDef]Type{tp: tc.Bool()}
	got := tc.Subst(open, env)
	want := tc.FuncOf(tc.TupleOf([]Type{tc.Bool(), tc.Int()}), tc.ArrayOf(tc.Bool()))
	if got != want {
		t.Errorf("Subst = %v, want %v", got, want)
	}
	// Substitution with an empty environment is identity.
	if tc.Subst(open, nil) != open {
		t.Error("empty substitution should be identity")
	}
	if HasTypeParams(got) {
		t.Error("closed type reports open")
	}
	if !HasTypeParams(open) {
		t.Error("open type reports closed")
	}
}

func TestFlatten(t *testing.T) {
	tc := NewCache()
	i, b, v := tc.Int(), tc.Byte(), tc.Void()
	pair := tc.TupleOf([]Type{i, b})
	cases := []struct {
		t    Type
		want []Type
	}{
		{i, []Type{i}},
		{v, nil},
		{pair, []Type{i, b}},
		{tc.TupleOf([]Type{pair, i}), []Type{i, b, i}},
		{tc.TupleOf([]Type{v, i, v}), []Type{i}},
		{tc.ArrayOf(pair), []Type{tc.ArrayOf(i), tc.ArrayOf(b)}},
		{tc.ArrayOf(v), []Type{tc.ArrayOf(v)}},
		{tc.FuncOf(pair, v), []Type{tc.FuncOf(pair, v)}},
	}
	for _, c := range cases {
		got := Flatten(tc, c.t, nil)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Flatten(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTypeConstructorTable(t *testing.T) {
	// T1: the table matches the paper's §2.5 summary.
	rows := TypeConstructorTable()
	want := []TypeConRow{
		{"Primitive", "", "void|int|byte|bool"},
		{"Array", "=T", "Array<T>"},
		{"Tuple", "+T0 ... +Tn", "(T0, ..., Tn)"},
		{"Function", "-Tp +Tr", "Tp -> Tr"},
		{"class X", "=T0 ... =Tn", "X<T0, ..., Tn>"},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("table = %v", rows)
	}
	// Verify each variance mark against the implemented subtype
	// relation, so the table cannot drift from the implementation.
	tc, animal, bat, box := newEnv()
	an, bt := tc.ClassOf(animal, nil), tc.ClassOf(bat, nil)
	if !tc.IsSubtype(tc.TupleOf([]Type{bt, bt}), tc.TupleOf([]Type{an, an})) {
		t.Error("table says tuples covariant; implementation disagrees")
	}
	if !tc.IsSubtype(tc.FuncOf(an, bt), tc.FuncOf(bt, an)) {
		t.Error("table says functions -param +return; implementation disagrees")
	}
	if tc.IsSubtype(tc.ArrayOf(bt), tc.ArrayOf(an)) {
		t.Error("table says arrays invariant; implementation disagrees")
	}
	if tc.IsSubtype(tc.ClassOf(box, []Type{bt}), tc.ClassOf(box, []Type{an})) {
		t.Error("table says class args invariant; implementation disagrees")
	}
}

// ------------------------------------------------------ property tests

// randType builds a random closed type of bounded depth.
func randType(tc *Cache, r *rand.Rand, classes []*ClassDef, depth int) Type {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return tc.Int()
		case 1:
			return tc.Byte()
		case 2:
			return tc.Bool()
		default:
			return tc.Void()
		}
	}
	switch r.Intn(6) {
	case 0:
		n := r.Intn(3)
		elems := make([]Type, n)
		for i := range elems {
			elems[i] = randType(tc, r, classes, depth-1)
		}
		return tc.TupleOf(elems)
	case 1:
		return tc.FuncOf(randType(tc, r, classes, depth-1), randType(tc, r, classes, depth-1))
	case 2:
		return tc.ArrayOf(randType(tc, r, classes, depth-1))
	case 3:
		cd := classes[r.Intn(len(classes))]
		args := make([]Type, len(cd.TypeParams))
		for i := range args {
			args[i] = randType(tc, r, classes, depth-1)
		}
		return tc.ClassOf(cd, args)
	default:
		return randType(tc, r, classes, 0)
	}
}

func propEnv() (*Cache, []*ClassDef) {
	tc := NewCache()
	animal := tc.NewClassDef("Animal", nil, nil)
	bat := tc.NewClassDef("Bat", nil, nil)
	bat.ParentType = tc.ClassOf(animal, nil)
	box := tc.NewClassDef("Box", []*TypeParamDef{tc.NewTypeParamDef("T", 0, nil)}, nil)
	return tc, []*ClassDef{animal, bat, box}
}

// TestPropSubtypeReflexive: every type is a subtype of itself.
func TestPropSubtypeReflexive(t *testing.T) {
	tc, classes := propEnv()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randType(tc, r, classes, 3)
		return tc.IsSubtype(x, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropInterningCanonical: rebuilding a type from its own structure
// yields the identical pointer.
func TestPropInterningCanonical(t *testing.T) {
	tc, classes := propEnv()
	var rebuild func(x Type) Type
	rebuild = func(x Type) Type {
		switch x := x.(type) {
		case *Tuple:
			elems := make([]Type, len(x.Elems))
			for i, e := range x.Elems {
				elems[i] = rebuild(e)
			}
			return tc.TupleOf(elems)
		case *Func:
			return tc.FuncOf(rebuild(x.Param), rebuild(x.Ret))
		case *Array:
			return tc.ArrayOf(rebuild(x.Elem))
		case *Class:
			args := make([]Type, len(x.Args))
			for i, a := range x.Args {
				args[i] = rebuild(a)
			}
			return tc.ClassOf(x.Def, args)
		default:
			return x
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randType(tc, r, classes, 4)
		return rebuild(x) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropSubtypeTransitive: sampled transitivity via known chains
// composed into random contexts.
func TestPropSubtypeTransitive(t *testing.T) {
	tc, classes := propEnv()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randType(tc, r, classes, 2)
		b := randType(tc, r, classes, 2)
		c := randType(tc, r, classes, 2)
		if tc.IsSubtype(a, b) && tc.IsSubtype(b, c) {
			return tc.IsSubtype(a, c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropLubIsUpperBound: when Lub exists, both inputs are subtypes of
// it.
func TestPropLubIsUpperBound(t *testing.T) {
	tc, classes := propEnv()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randType(tc, r, classes, 2)
		b := randType(tc, r, classes, 2)
		l := tc.Lub(a, b)
		if l == nil {
			return true
		}
		return tc.IsSubtype(a, l) && tc.IsSubtype(b, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestPropFlattenNoTuples: flattening never yields tuple or void
// components, and flattening is idempotent.
func TestPropFlattenNoTuples(t *testing.T) {
	tc, classes := propEnv()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randType(tc, r, classes, 4)
		parts := Flatten(tc, x, nil)
		for _, p := range parts {
			if _, isTuple := p.(*Tuple); isTuple {
				return false
			}
			if p == tc.Void() {
				return false
			}
			again := Flatten(tc, p, nil)
			if len(again) != 1 || again[0] != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropSubtypesFlattenCongruently: if a <: b then their flattened
// expansions have equal length (the §4.2 property that makes the
// normalized calling convention unambiguous).
func TestPropSubtypesFlattenCongruently(t *testing.T) {
	tc, classes := propEnv()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randType(tc, r, classes, 3)
		b := randType(tc, r, classes, 3)
		if !tc.IsSubtype(a, b) || a == tc.Null() {
			return true
		}
		return len(Flatten(tc, a, nil)) == len(Flatten(tc, b, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropCastTrueImpliesSubtypeOnRefs: a CastTrue relation between
// closed class types coincides with subtyping.
func TestPropCastTrueImpliesSubtypeOnRefs(t *testing.T) {
	tc, classes := propEnv()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randType(tc, r, classes, 2)
		b := randType(tc, r, classes, 2)
		if _, ok := a.(*Class); !ok {
			return true
		}
		if tc.Castable(a, b) == CastTrue {
			return tc.IsSubtype(a, b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSize(t *testing.T) {
	tc := NewCache()
	if Size(tc.Int()) != 1 {
		t.Error("Size(int) = 1")
	}
	pair := tc.TupleOf([]Type{tc.Int(), tc.Int()})
	if Size(pair) != 3 {
		t.Errorf("Size((int,int)) = %d, want 3", Size(pair))
	}
	if Size(tc.FuncOf(pair, tc.Void())) != 5 {
		t.Errorf("Size((int,int)->void) = %d, want 5", Size(tc.FuncOf(pair, tc.Void())))
	}
}

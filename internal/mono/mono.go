// Package mono implements whole-program monomorphization (§4.3): a
// specialized version of each polymorphic class and method is generated
// for each distinct assignment of type arguments to type parameters.
// After this pass no type parameters appear anywhere in the program, so
// casts and queries involving former type parameters become decidable
// statically (the optimizer then folds them, §3.3) and normalization can
// flatten every tuple (§4.2).
//
// Generic virtual methods (k3: Matcher.add<T>) are handled by giving
// each (vtable slot, method type arguments) combination its own slot in
// the specialized vtables of the hierarchy.
package mono

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/par"
	"repro/internal/types"
)

// FuncExpansion records per-source-function code growth (E4).
type FuncExpansion struct {
	Name         string
	Instances    int
	InstrsBefore int
	InstrsAfter  int
}

// Stats summarizes specialization, the statistic the paper reports
// tracking continually (§6.1).
type Stats struct {
	FuncsBefore   int
	FuncsAfter    int
	InstrsBefore  int
	InstrsAfter   int
	ClassesBefore int
	ClassesAfter  int
	PerFunc       []FuncExpansion
}

// ExpansionFactor returns the instruction-count growth ratio.
func (s *Stats) ExpansionFactor() float64 {
	if s.InstrsBefore == 0 {
		return 1
	}
	return float64(s.InstrsAfter) / float64(s.InstrsBefore)
}

// Config controls monomorphization.
type Config struct {
	// MaxInstances bounds the number of specializations of one function;
	// exceeding it indicates polymorphic recursion, which Virgil
	// disallows (§4.3). 0 means the default of 10000.
	MaxInstances int
	// Jobs bounds the worker pool for the body-copy phase (<= 1 copies
	// sequentially). The discovery fixpoint is inherently sequential and
	// unaffected; the output module is identical for every value.
	Jobs int
	// SkipBody, when non-nil, suppresses the body copy of specialized
	// functions it reports true for. It receives the output instance
	// name and the lowered source function's name it specializes — the
	// names are related but not mechanically derivable (source names may
	// themselves contain '<', e.g. operator wrappers). The discovery
	// fixpoint still runs in full — the instance set, vtable layouts,
	// and function order are unaffected — but skipped functions come
	// out with declarations only. Incremental compilation uses this to
	// avoid copying bodies it will replace with cached artifacts. May
	// be called concurrently.
	SkipBody func(dstName, srcName string) bool
}

type funcKey struct {
	f   *ir.Func
	key string
}

type classKey struct {
	def *types.ClassDef
	key string
}

type vtEntry struct {
	origSlot int
	margs    []types.Type
	newSlot  int
}

// hierarchy tracks specialized vtable layout for one class hierarchy
// (rooted at a parentless class).
type hierarchy struct {
	entries   []vtEntry
	slotOf    map[string]int
	instances []*ir.Class
}

type monomorphizer struct {
	in  *ir.Module
	out *ir.Module
	tc  *types.Cache
	cfg Config

	funcInst  map[funcKey]*ir.Func
	classInst map[classKey]*ir.Class
	perFunc   map[*ir.Func]int // instance count per source func
	origByDef map[*types.ClassDef]*ir.Class
	hiers     map[*types.ClassDef]*hierarchy
	work      []func() error
	plans     []*bodyPlan
	err       error
}

// bodyPlan is one specialized function body scheduled for copying. The
// sequential discovery fixpoint (planBody) resolves everything that
// touches shared monomorphizer state — call targets, vtable slots,
// class instances — and records the per-instruction resolutions here,
// in traversal order; copyBody then rebuilds the body from the plan
// with no shared mutable state, so plans fan out across workers.
type bodyPlan struct {
	src, dst *ir.Func
	env      map[*types.TypeParamDef]types.Type
	// fns are the specialized targets of OpCallStatic/OpMakeClosure
	// instructions, in block/instruction order.
	fns []*ir.Func
	// slots are the specialized vtable slots of OpCallVirtual/OpMakeBound
	// instructions, in block/instruction order.
	slots []int
}

// Monomorphize specializes mod into a new, fully monomorphic module.
func Monomorphize(ctx context.Context, mod *ir.Module, cfg Config) (*ir.Module, *Stats, error) {
	if mod.Monomorphic {
		return mod, &Stats{}, nil
	}
	if cfg.MaxInstances == 0 {
		cfg.MaxInstances = 10000
	}
	m := &monomorphizer{
		in:  mod,
		tc:  mod.Types,
		cfg: cfg,
		out: &ir.Module{
			Types:       mod.Types,
			Globals:     mod.Globals,
			Monomorphic: true,
		},
		funcInst:  map[funcKey]*ir.Func{},
		classInst: map[classKey]*ir.Class{},
		perFunc:   map[*ir.Func]int{},
		origByDef: map[*types.ClassDef]*ir.Class{},
		hiers:     map[*types.ClassDef]*hierarchy{},
	}
	for _, c := range mod.Classes {
		m.origByDef[c.Def] = c
	}
	if mod.Init != nil {
		m.out.Init = m.instance(mod.Init, nil)
	}
	if mod.Main != nil {
		m.out.Main = m.instance(mod.Main, nil)
	}
	// Drain the worklist: vtable fills may create new instances and new
	// vtable entries. This fixpoint is the whole-program barrier — it
	// fixes the identity and order of every output function and class.
	// It is also the stage's longest sequential stretch, so it polls ctx
	// every few items to stay cancellable on explosive instantiations.
	for drained := 0; len(m.work) > 0 && m.err == nil; drained++ {
		if drained&0x3F == 0 && ctx.Err() != nil {
			m.err = ctx.Err()
			break
		}
		w := m.work[0]
		m.work = m.work[1:]
		if err := w(); err != nil {
			m.err = err
		}
	}
	if m.err != nil {
		return nil, nil, m.err
	}
	// Copy the planned bodies; every cross-function fact was resolved
	// during the fixpoint, so the copies are independent.
	if err := par.Run(ctx, "mono", cfg.Jobs, len(m.plans), func(i int) error {
		if cfg.SkipBody != nil && cfg.SkipBody(m.plans[i].dst.Name, m.plans[i].src.Name) {
			return nil
		}
		return m.copyBody(m.plans[i])
	}); err != nil {
		return nil, nil, err
	}
	stats := m.stats()
	return m.out, stats, nil
}

func (m *monomorphizer) stats() *Stats {
	s := &Stats{
		FuncsBefore:   len(m.in.Funcs),
		FuncsAfter:    len(m.out.Funcs),
		InstrsBefore:  m.in.NumInstrs(),
		InstrsAfter:   m.out.NumInstrs(),
		ClassesBefore: len(m.in.Classes),
		ClassesAfter:  len(m.out.Classes),
	}
	byName := map[string]*FuncExpansion{}
	for _, f := range m.out.Funcs {
		src := f.Name
		if i := strings.IndexByte(src, '<'); i >= 0 {
			src = src[:i]
		}
		fe := byName[src]
		if fe == nil {
			fe = &FuncExpansion{Name: src}
			byName[src] = fe
		}
		fe.Instances++
		fe.InstrsAfter += f.NumInstrs()
	}
	for _, f := range m.in.Funcs {
		if fe := byName[f.Name]; fe != nil {
			fe.InstrsBefore = f.NumInstrs()
		}
	}
	for _, fe := range byName {
		s.PerFunc = append(s.PerFunc, *fe)
	}
	sort.Slice(s.PerFunc, func(i, j int) bool {
		a, b := s.PerFunc[i], s.PerFunc[j]
		if a.Instances != b.Instances {
			return a.Instances > b.Instances
		}
		return a.Name < b.Name
	})
	return s
}

func typesKey(ts []types.Type) string {
	if len(ts) == 0 {
		return ""
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

// instance returns the specialization of f for the given closed type
// arguments, creating it (and enqueueing its body) on first use.
func (m *monomorphizer) instance(f *ir.Func, targs []types.Type) *ir.Func {
	key := funcKey{f: f, key: typesKey(targs)}
	if g, ok := m.funcInst[key]; ok {
		return g
	}
	m.perFunc[f]++
	tooBig := false
	for _, t := range targs {
		if types.Size(t) > 256 {
			tooBig = true
		}
	}
	if tooBig || m.perFunc[f] > m.cfg.MaxInstances {
		m.fail(fmt.Errorf("mono: function %s exceeds %d specializations; polymorphic recursion is disallowed (§4.3)", f.Name, m.cfg.MaxInstances))
		// Return a placeholder to keep the traversal terminating.
		g := &ir.Func{Name: f.Name + "<...>", Kind: f.Kind, VtSlot: -1}
		m.funcInst[key] = g
		return g
	}
	name := f.Name
	if len(targs) > 0 {
		name = fmt.Sprintf("%s<%s>", f.Name, typesKey(targs))
	}
	g := &ir.Func{
		Name:    name,
		Kind:    f.Kind,
		VtSlot:  -1,
		Results: m.substAll(f.Results, types.BindParams(f.TypeParams, targs)),
	}
	m.funcInst[key] = g
	m.out.Funcs = append(m.out.Funcs, g)
	env := types.BindParams(f.TypeParams, targs)
	m.work = append(m.work, func() error { return m.planBody(f, g, env) })
	// Params must exist immediately: callers consult arity and types.
	for _, p := range f.Params {
		g.Params = append(g.Params, g.NewReg(m.tc.Subst(p.Type, env), p.Name))
	}
	return g
}

func (m *monomorphizer) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

func (m *monomorphizer) substAll(ts []types.Type, env map[*types.TypeParamDef]types.Type) []types.Type {
	out := make([]types.Type, len(ts))
	for i, t := range ts {
		out[i] = m.tc.Subst(t, env)
	}
	return out
}

// classInstance returns the specialized class for a closed class type,
// creating it and filling its vtable on first use.
func (m *monomorphizer) classInstance(ct *types.Class) *ir.Class {
	key := classKey{def: ct.Def, key: typesKey(ct.Args)}
	if c, ok := m.classInst[key]; ok {
		return c
	}
	orig := m.origByDef[ct.Def]
	c := &ir.Class{
		Name:  ct.String(),
		Def:   ct.Def,
		Args:  ct.Args,
		Depth: orig.Depth,
		Type:  ct,
	}
	m.classInst[key] = c
	m.out.Classes = append(m.out.Classes, c)
	env := types.BindParams(ct.Def.TypeParams, ct.Args)
	for _, fd := range orig.Fields {
		c.Fields = append(c.Fields, ir.Field{Name: fd.Name, Type: m.tc.Subst(fd.Type, env)})
	}
	if pt := m.tc.ParentOf(ct); pt != nil {
		c.Parent = m.classInstance(pt)
	}
	h := m.hierarchyOf(ct.Def)
	h.instances = append(h.instances, c)
	// Fill this class's vtable for every dispatch entry discovered so
	// far (and future ones as they appear).
	entries := append([]vtEntry{}, h.entries...)
	m.work = append(m.work, func() error {
		for _, e := range entries {
			m.fillSlot(c, e)
		}
		return nil
	})
	return c
}

func (m *monomorphizer) rootOf(def *types.ClassDef) *types.ClassDef {
	for def.ParentType != nil {
		def = def.ParentType.Def
	}
	return def
}

func (m *monomorphizer) hierarchyOf(def *types.ClassDef) *hierarchy {
	root := m.rootOf(def)
	h := m.hiers[root]
	if h == nil {
		h = &hierarchy{slotOf: map[string]int{}}
		m.hiers[root] = h
	}
	return h
}

// dispatchSlot returns the specialized vtable slot for (origSlot,
// method type args) in the hierarchy of def, creating it (and filling
// it in all known instances) on first use.
func (m *monomorphizer) dispatchSlot(def *types.ClassDef, origSlot int, margs []types.Type) int {
	h := m.hierarchyOf(def)
	k := fmt.Sprintf("%d|%s", origSlot, typesKey(margs))
	if s, ok := h.slotOf[k]; ok {
		return s
	}
	e := vtEntry{origSlot: origSlot, margs: margs, newSlot: len(h.entries)}
	h.slotOf[k] = e.newSlot
	h.entries = append(h.entries, e)
	insts := append([]*ir.Class{}, h.instances...)
	m.work = append(m.work, func() error {
		for _, c := range insts {
			m.fillSlot(c, e)
		}
		return nil
	})
	return e.newSlot
}

// fillSlot installs the specialized implementation of a dispatch entry
// into one specialized class's vtable.
func (m *monomorphizer) fillSlot(c *ir.Class, e vtEntry) {
	for len(c.Vtable) <= e.newSlot {
		c.Vtable = append(c.Vtable, nil)
	}
	if c.Vtable[e.newSlot] != nil {
		return
	}
	orig := m.origByDef[c.Def]
	if e.origSlot >= len(orig.Vtable) {
		return // slot belongs to an unrelated branch of the hierarchy
	}
	target := orig.Vtable[e.origSlot]
	if target == nil {
		return
	}
	// Class-part type arguments: walk the instantiation up to the
	// target's declaring class.
	var cargs []types.Type
	if target.NumClassParams > 0 {
		w := c.Type
		for w != nil && w.Def != target.Class.Def {
			w = m.tc.ParentOf(w)
		}
		if w != nil {
			cargs = w.Args
		}
	}
	inst := m.instance(target, append(append([]types.Type{}, cargs...), e.margs...))
	inst.VtSlot = e.newSlot
	c.Vtable[e.newSlot] = inst
}

// planBody walks f's instructions in order, resolving everything the
// specialized body needs from shared state: call targets become
// instances (which enqueue their own plans), virtual dispatches get
// specialized vtable slots, and referenced classes are materialized.
// The traversal order is exactly the order the pre-parallel
// specializer used, so the output module's function and class order is
// unchanged. The resolutions are recorded on a bodyPlan for copyBody.
func (m *monomorphizer) planBody(f, g *ir.Func, env map[*types.TypeParamDef]types.Type) error {
	p := &bodyPlan{src: f, dst: g, env: env}
	subst := func(t types.Type) types.Type {
		if t == nil {
			return nil
		}
		return m.tc.Subst(t, env)
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpNewObject:
				ct := subst(in.Type).(*types.Class)
				m.classInstance(ct)
			case ir.OpCallStatic, ir.OpMakeClosure:
				targs := m.substAll(in.TypeArgs, env)
				p.fns = append(p.fns, m.instance(in.Fn, targs))
			case ir.OpCallVirtual, ir.OpMakeBound:
				recvType, ok := subst(in.Type).(*types.Class)
				if !ok {
					return fmt.Errorf("mono: virtual dispatch on non-class type %s in %s", subst(in.Type), f.Name)
				}
				margs := m.substAll(in.TypeArgs, env)
				p.slots = append(p.slots, m.dispatchSlot(recvType.Def, in.FieldSlot, margs))
				// Make sure the static receiver class itself exists so
				// statically-typed allocations elsewhere dispatch.
				m.classInstance(recvType)
			case ir.OpFieldLoad, ir.OpFieldStore:
				// Normalization computes field layouts from the static
				// receiver class, which must therefore be materialized.
				if ct, ok := subst(in.Args[0].Type).(*types.Class); ok {
					m.classInstance(ct)
				}
			}
		}
	}
	m.plans = append(m.plans, p)
	return nil
}

// copyBody copies the planned body from p.src into p.dst, substituting
// types and installing the resolutions planBody recorded. It touches
// only p.dst and the (concurrency-safe) type cache, so plans run on
// parallel workers.
func (m *monomorphizer) copyBody(p *bodyPlan) error {
	f, g, env := p.src, p.dst, p.env
	fi, si := 0, 0
	regMap := map[*ir.Reg]*ir.Reg{}
	for i, pr := range f.Params {
		regMap[pr] = g.Params[i]
	}
	mapReg := func(r *ir.Reg) *ir.Reg {
		if nr, ok := regMap[r]; ok {
			return nr
		}
		nr := g.NewReg(m.tc.Subst(r.Type, env), r.Name)
		regMap[r] = nr
		return nr
	}
	blockMap := map[*ir.Block]*ir.Block{}
	for _, blk := range f.Blocks {
		blockMap[blk] = g.NewBlock()
	}
	subst := func(t types.Type) types.Type {
		if t == nil {
			return nil
		}
		return m.tc.Subst(t, env)
	}
	for _, blk := range f.Blocks {
		nb := blockMap[blk]
		for _, in := range blk.Instrs {
			ni := &ir.Instr{
				Op: in.Op, FieldSlot: in.FieldSlot, IVal: in.IVal,
				SVal: in.SVal, Global: in.Global, Pos: in.Pos,
			}
			for _, d := range in.Dst {
				ni.Dst = append(ni.Dst, mapReg(d))
			}
			for _, a := range in.Args {
				ni.Args = append(ni.Args, mapReg(a))
			}
			for _, tb := range in.Blocks {
				ni.Blocks = append(ni.Blocks, blockMap[tb])
			}
			ni.Type = subst(in.Type)
			ni.Type2 = subst(in.Type2)
			switch in.Op {
			case ir.OpConstNull:
				// Re-expand defaults whose type was a type parameter:
				// the specialized type may be a primitive or tuple.
				m.emitDefault(g, nb, ni.Dst[0], ni.Type)
				continue
			case ir.OpCallStatic, ir.OpMakeClosure:
				ni.Fn = p.fns[fi]
				fi++
			case ir.OpCallVirtual, ir.OpMakeBound:
				ni.FieldSlot = p.slots[si]
				si++
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	return nil
}

// emitDefault appends instructions materializing the default value of a
// closed type into dst.
func (m *monomorphizer) emitDefault(g *ir.Func, blk *ir.Block, dst *ir.Reg, t types.Type) {
	switch t := t.(type) {
	case *types.Prim:
		switch t.Kind {
		case types.KindInt:
			blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{dst}})
		case types.KindByte:
			blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstByte, Dst: []*ir.Reg{dst}})
		case types.KindBool:
			blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{dst}})
		case types.KindVoid:
			blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstVoid, Dst: []*ir.Reg{dst}})
		default:
			blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstNull, Dst: []*ir.Reg{dst}, Type: t})
		}
	case *types.Enum:
		blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstEnum, Dst: []*ir.Reg{dst}, Type: t})
	case *types.Tuple:
		elems := make([]*ir.Reg, len(t.Elems))
		for i, et := range t.Elems {
			er := g.NewReg(et, "")
			m.emitDefault(g, blk, er, et)
			elems[i] = er
		}
		blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpMakeTuple, Dst: []*ir.Reg{dst}, Args: elems, Type: t})
	default:
		blk.Instrs = append(blk.Instrs, &ir.Instr{Op: ir.OpConstNull, Dst: []*ir.Reg{dst}, Type: t})
	}
}

package mono

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/testprogs"
	"repro/internal/typecheck"
	"repro/internal/types"
)

func compile(t *testing.T, source string) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatalf("lower error: %v", err)
	}
	return mod
}

func run(t *testing.T, mod *ir.Module) string {
	t.Helper()
	var out strings.Builder
	it := interp.New(mod, interp.Options{Out: &out})
	if _, err := it.Run(); err != nil {
		t.Fatalf("run error: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

// TestCorpusEquivalence runs the whole corpus in reference mode and
// after monomorphization, asserting identical observable output.
func TestCorpusEquivalence(t *testing.T) {
	for _, p := range testprogs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ref := compile(t, p.Source)
			got := run(t, ref)
			if got != p.Want {
				t.Fatalf("reference mode: got %q, want %q", got, p.Want)
			}
			monoMod, stats, err := Monomorphize(context.Background(), ref, Config{})
			if err != nil {
				t.Fatalf("mono error: %v", err)
			}
			got2 := run(t, monoMod)
			if got2 != p.Want {
				t.Fatalf("monomorphized: got %q, want %q", got2, p.Want)
			}
			if stats.FuncsAfter == 0 {
				t.Fatal("no functions after monomorphization")
			}
		})
	}
}

// TestNoTypeParamsRemain checks the §4.3 guarantee: after
// monomorphization, no type parameters appear in the program.
func TestNoTypeParamsRemain(t *testing.T) {
	for _, name := range []string{"generic_list_d", "matcher_km", "hashmap_i", "print1_j"} {
		p := testprogs.Get(name)
		mod := compile(t, p.Source)
		monoMod, _, err := Monomorphize(context.Background(), mod, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range monoMod.Funcs {
			if len(f.TypeParams) != 0 {
				t.Errorf("%s: function %s still has type parameters", name, f.Name)
			}
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Type != nil && types.HasTypeParams(in.Type) {
						t.Errorf("%s: %s: open type %s in %s", name, f.Name, in.Type, in.Op)
					}
					if len(in.TypeArgs) != 0 && in.Op != ir.OpNop {
						for _, a := range in.TypeArgs {
							if types.HasTypeParams(a) {
								t.Errorf("%s: %s: open type arg %s", name, f.Name, a)
							}
						}
					}
					for _, d := range in.Dst {
						if types.HasTypeParams(d.Type) {
							t.Errorf("%s: %s: open register type %s", name, f.Name, d.Type)
						}
					}
				}
			}
		}
		for _, c := range monoMod.Classes {
			for _, fd := range c.Fields {
				if types.HasTypeParams(fd.Type) {
					t.Errorf("%s: class %s field %s has open type %s", name, c.Name, fd.Name, fd.Type)
				}
			}
		}
	}
}

// TestExpansionStats checks that specialization statistics are
// collected and reflect multiple instantiations (E4).
func TestExpansionStats(t *testing.T) {
	p := testprogs.Get("generic_list_d")
	mod := compile(t, p.Source)
	_, stats, err := Monomorphize(context.Background(), mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InstrsBefore == 0 || stats.InstrsAfter == 0 {
		t.Fatal("missing instruction counts")
	}
	var listAlloc *FuncExpansion
	for i := range stats.PerFunc {
		if stats.PerFunc[i].Name == "List.$alloc" {
			listAlloc = &stats.PerFunc[i]
		}
	}
	if listAlloc == nil {
		t.Fatal("List.$alloc not in per-function stats")
	}
	if listAlloc.Instances < 2 {
		t.Errorf("List.$alloc should have >= 2 instances (int and (int, int)), got %d", listAlloc.Instances)
	}
}

// TestReachabilityPruning: monomorphization only specializes reachable
// code, so an unused generic function produces no instances.
func TestReachabilityPruning(t *testing.T) {
	mod := compile(t, `
def unused<T>(x: T) -> T { return x; }
def main() { System.puti(1); }
`)
	monoMod, _, err := Monomorphize(context.Background(), mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range monoMod.Funcs {
		if strings.HasPrefix(f.Name, "unused") {
			t.Errorf("unreachable generic %s was specialized", f.Name)
		}
	}
}

// TestPolymorphicRecursionDetected: Virgil disallows polymorphic
// recursion (§4.3); our monomorphizer detects and reports it.
func TestPolymorphicRecursionDetected(t *testing.T) {
	mod := compile(t, `
def poly<T>(x: T, n: int) -> int {
	if (n == 0) return 0;
	return poly((x, x), n - 1);
}
def main() { System.puti(poly(1, 100000)); }
`)
	_, _, err := Monomorphize(context.Background(), mod, Config{MaxInstances: 64})
	if err == nil {
		t.Fatal("expected polymorphic recursion error")
	}
	if !strings.Contains(err.Error(), "polymorphic recursion") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRuntimeTypeArgsGone: monomorphized execution performs no runtime
// type-environment bindings (§4.3's implementation claim).
func TestRuntimeTypeArgsGone(t *testing.T) {
	p := testprogs.Get("generic_list_d")
	mod := compile(t, p.Source)

	itRef := interp.New(mod, interp.Options{})
	if _, err := itRef.Run(); err != nil {
		t.Fatal(err)
	}
	if itRef.Stats().TypeEnvBinds == 0 {
		t.Fatal("reference mode should bind runtime type environments")
	}

	monoMod, _, err := Monomorphize(context.Background(), mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	itMono := interp.New(monoMod, interp.Options{})
	if _, err := itMono.Run(); err != nil {
		t.Fatal(err)
	}
	if got := itMono.Stats().TypeEnvBinds; got != 0 {
		t.Fatalf("monomorphized code performed %d runtime type bindings, want 0", got)
	}
}

// Package ir defines the compiler's intermediate representation: a
// typed, register-based control-flow-graph IR.
//
// The same IR serves two forms. The polymorphic form, produced by
// lowering, may mention type parameters in register types, call type
// arguments, and cast/query targets; it is what the reference
// interpreter executes with runtime type environments (§4.3's
// "invisible arguments"). The monomorphic+normalized form, produced by
// the mono and norm passes, has closed scalar types only: no type
// parameters and no tuples, the paper's compiled form (§4.2-§4.3).
package ir

import (
	"fmt"
	"strings"

	"repro/internal/src"
	"repro/internal/types"
)

// Op is an instruction opcode.
type Op int

// Instruction opcodes.
const (
	OpNop Op = iota

	// Constants.
	OpConstInt    // Dst[0] = IVal (int)
	OpConstByte   // Dst[0] = IVal (byte)
	OpConstBool   // Dst[0] = IVal != 0
	OpConstNull   // Dst[0] = null of Type
	OpConstVoid   // Dst[0] = ()
	OpConstString // Dst[0] = new Array<byte> of SVal

	// Moves.
	OpMove // Dst[0] = Args[0]

	// Integer arithmetic (32-bit wrapping).
	OpAdd
	OpSub
	OpMul
	OpDiv // traps !DivideByZeroException
	OpMod // traps !DivideByZeroException
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpNeg
	// Comparisons; Type is the operand type (int or byte).
	OpLt
	OpLe
	OpGt
	OpGe
	// Universal equality; works on any type (recursive on tuples).
	OpEq
	OpNe
	// Boolean not.
	OpNot
	// Boolean combinators, used by normalization to combine the
	// elementwise results of flattened tuple equality and queries.
	OpBoolAnd
	OpBoolOr

	// Tuples (eliminated by normalization).
	OpMakeTuple // Dst[0] = (Args...); Type is the tuple type
	OpTupleGet  // Dst[0] = Args[0].FieldSlot

	// Objects.
	OpNewObject  // Dst[0] = new Type (a class type); fields defaulted
	OpFieldLoad  // Dst[0] = Args[0].fields[FieldSlot]; null-checks
	OpFieldStore // Args[0].fields[FieldSlot] = Args[1]; null-checks
	OpNullCheck  // traps if Args[0] is null

	// Arrays.
	OpArrayNew   // Dst[0] = new Type (array type) of length Args[0]
	OpArrayLoad  // Dst[0] = Args[0][Args[1]]
	OpArrayStore // Args[0][Args[1]] = Args[2]
	OpArrayLen   // Dst[0] = Args[0].length

	// Globals.
	OpGlobalLoad  // Dst[0] = globals[Global]
	OpGlobalStore // globals[Global] = Args[0]

	// Calls. Dst may be empty (void) or hold result registers (one
	// before normalization, several after).
	OpCallStatic   // Dst = Fn(Args...) with TypeArgs
	OpCallVirtual  // Dst = Args[0].vtable[FieldSlot](Args...) with TypeArgs
	OpCallIndirect // Dst = Args[0](Args[1:]...)
	OpCallBuiltin  // Dst = builtin SVal (Args...)

	// Closures.
	OpMakeClosure // Dst[0] = closure of Fn with TypeArgs (no receiver)
	OpMakeBound   // Dst[0] = Args[0].vtable[FieldSlot] bound to Args[0]

	// Enums (§6.1 future work, implemented).
	OpConstEnum // Dst[0] = case IVal of enum Type
	OpEnumTag   // Dst[0] = int tag of Args[0]
	OpEnumName  // Dst[0] = name string of Args[0]

	// Reified type operations (§2.2, §4.3).
	OpTypeCast  // Dst[0] = cast Args[0] from Type2 to Type; traps
	OpTypeQuery // Dst[0] = Args[0] is-a Type (from static Type2)

	// Control flow terminators.
	OpRet    // return Args (0, 1, or N after normalization)
	OpJump   // goto Blocks[0]
	OpBranch // if Args[0] goto Blocks[0] else Blocks[1]
	OpThrow  // throw exception SVal
)

var opNames = map[Op]string{
	OpNop: "nop", OpConstInt: "const.int", OpConstByte: "const.byte",
	OpConstBool: "const.bool", OpConstNull: "const.null", OpConstVoid: "const.void",
	OpConstString: "const.string", OpMove: "move",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNeg: "neg", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpEq: "eq", OpNe: "ne", OpNot: "not", OpBoolAnd: "band", OpBoolOr: "bor",
	OpMakeTuple: "tuple", OpTupleGet: "tuple.get",
	OpNewObject: "new", OpFieldLoad: "field.load", OpFieldStore: "field.store",
	OpNullCheck: "nullcheck",
	OpArrayNew:  "array.new", OpArrayLoad: "array.load", OpArrayStore: "array.store",
	OpArrayLen: "array.len", OpGlobalLoad: "global.load", OpGlobalStore: "global.store",
	OpCallStatic: "call", OpCallVirtual: "call.virtual", OpCallIndirect: "call.indirect",
	OpCallBuiltin: "call.builtin", OpMakeClosure: "closure", OpMakeBound: "closure.bound",
	OpTypeCast: "cast", OpTypeQuery: "query",
	OpConstEnum: "const.enum", OpEnumTag: "enum.tag", OpEnumName: "enum.name",
	OpRet: "ret", OpJump: "jump", OpBranch: "branch", OpThrow: "throw",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpRet, OpJump, OpBranch, OpThrow:
		return true
	}
	return false
}

// Reg is a virtual register with a static type.
type Reg struct {
	ID   int
	Type types.Type
	Name string // optional source name, for dumps
}

func (r *Reg) String() string {
	if r.Name != "" {
		return fmt.Sprintf("v%d'%s", r.ID, r.Name)
	}
	return fmt.Sprintf("v%d", r.ID)
}

// Instr is one IR instruction. The payload fields used depend on Op.
type Instr struct {
	Op        Op
	Dst       []*Reg
	Args      []*Reg
	Type      types.Type   // class/array/tuple/cast-target/operand type
	Type2     types.Type   // cast/query source static type
	Fn        *Func        // direct call / closure target
	Global    *Global      // global load/store target
	FieldSlot int          // field slot, vtable slot, or tuple index
	IVal      int64        // integer payload
	SVal      string       // string payload (const string, builtin, throw)
	TypeArgs  []types.Type // call-site type arguments
	Blocks    []*Block     // branch/jump targets
	Pos       src.Pos
	// StackAlloc marks an allocation proven non-escaping by escape
	// analysis: both engines still build the value but skip its modeled
	// heap charge (the value is frame-local, so only the HeapBytes meter
	// can observe the difference). Only ops with statically known size
	// may carry it; analysis.VerifyPromotions re-proves every mark on
	// the final IR.
	StackAlloc bool
}

// Block is a basic block: a sequence of instructions ending in a
// terminator.
type Block struct {
	ID     int
	Instrs []*Instr
}

// Terminator returns the block's final instruction, or nil if the block
// is unterminated (only during construction).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// FuncKind classifies functions for diagnostics and statistics.
type FuncKind int

// Function kinds.
const (
	KindTopLevel FuncKind = iota
	KindMethod
	KindCtor
	KindAlloc   // synthesized allocator: A.new as a function (b7)
	KindWrapper // synthesized operator/builtin/unbound wrappers
	KindInit    // synthesized global initializer
)

// Func is an IR function.
type Func struct {
	Name string
	Kind FuncKind
	// TypeParams, before monomorphization, lists the type parameters in
	// scope: the owner class's parameters followed by the method's own.
	TypeParams []*types.TypeParamDef
	// NumClassParams is how many leading TypeParams belong to the owner
	// class; virtual dispatch binds those from the receiver object.
	NumClassParams int
	Params         []*Reg
	// Results holds the return types: exactly one entry (possibly void)
	// before normalization; zero or more scalars after.
	Results []types.Type
	Blocks  []*Block
	// Class is the owning IR class for methods/ctors, nil otherwise.
	Class  *Class
	VtSlot int // vtable slot for methods; -1 otherwise

	nextReg   int
	nextBlock int
}

// NewReg allocates a fresh register of type t in f.
func (f *Func) NewReg(t types.Type, name string) *Reg {
	r := &Reg{ID: f.nextReg, Type: t, Name: name}
	f.nextReg++
	return r
}

// NumRegs returns the number of virtual registers allocated in f.
func (f *Func) NumRegs() int { return f.nextReg }

// SetRegCount seeds the fresh-register counter. The incremental
// relinker rebuilds a function's registers with their original IDs
// preserved (so dumps stay byte-identical) and then seeds the counter
// past them, so later NewReg calls — e.g. from optimizer inlining —
// continue exactly where the original compilation's counter stood.
func (f *Func) SetRegCount(n int) { f.nextReg = n }

// NewBlock allocates and appends a fresh basic block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlock}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumInstrs counts instructions, the code-size statistic of E4.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Field is a field slot in an IR class.
type Field struct {
	Name string
	Type types.Type
}

// Class is IR class metadata. Before monomorphization there is one per
// source class, with open field types; after, one per reachable
// instantiation with closed types.
type Class struct {
	Name       string
	Def        *types.ClassDef
	Args       []types.Type // instantiation arguments (self-params before mono)
	Parent     *Class
	TypeParams []*types.TypeParamDef
	Fields     []Field // all fields including inherited, slot order
	Vtable     []*Func
	Depth      int
	// Type is the class type this IR class represents.
	Type *types.Class
}

// IsSubclassOf reports whether c is cls or a subclass of it.
func (c *Class) IsSubclassOf(cls *Class) bool {
	for w := c; w != nil; w = w.Parent {
		if w == cls {
			return true
		}
	}
	return false
}

// Global is a program global variable.
type Global struct {
	Name  string
	Type  types.Type
	Index int
}

// Module is a whole program in IR form.
type Module struct {
	Types   *types.Cache
	Funcs   []*Func
	Classes []*Class
	Globals []*Global
	Main    *Func
	// Init is the synthesized function running global initializers.
	Init *Func
	// Monomorphic is set after monomorphization.
	Monomorphic bool
	// Normalized is set after tuple normalization.
	Normalized bool
}

// FindFunc returns the first function named name, or nil. Declaration
// order is the lookup order, matching the interpreter's CallFunc.
func (m *Module) FindFunc(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumInstrs counts instructions across all functions (E4).
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// ------------------------------------------------------------- printing

// String renders the module for dumps and golden tests.
func (m *Module) String() string {
	var b strings.Builder
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "class %s", c.Name)
		if c.Parent != nil {
			fmt.Fprintf(&b, " extends %s", c.Parent.Name)
		}
		b.WriteString(" {\n")
		for i, f := range c.Fields {
			fmt.Fprintf(&b, "  field %d %s: %s\n", i, f.Name, f.Type)
		}
		for i, fn := range c.Vtable {
			if fn != nil {
				fmt.Fprintf(&b, "  vtable %d -> %s\n", i, fn.Name)
			}
		}
		b.WriteString("}\n")
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global %d %s: %s\n", g.Index, g.Name, g.Type)
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// String renders one function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", p, p.Type)
	}
	b.WriteString(") -> (")
	for i, r := range f.Results {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteString(")")
	if len(f.TypeParams) > 0 {
		b.WriteString(" <")
		for i, tp := range f.TypeParams {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tp.Name)
		}
		b.WriteString(">")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(in.String())
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	var b strings.Builder
	if len(in.Dst) > 0 {
		for i, d := range in.Dst {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.String())
		}
		b.WriteString(" = ")
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConstInt, OpConstByte:
		fmt.Fprintf(&b, " %d", in.IVal)
	case OpConstBool:
		fmt.Fprintf(&b, " %v", in.IVal != 0)
	case OpConstString, OpCallBuiltin, OpThrow:
		fmt.Fprintf(&b, " %q", in.SVal)
	case OpConstNull, OpNewObject, OpArrayNew, OpTypeCast, OpTypeQuery:
		fmt.Fprintf(&b, " %s", in.Type)
	case OpCallStatic, OpMakeClosure:
		fmt.Fprintf(&b, " %s", in.Fn.Name)
	case OpCallVirtual, OpMakeBound, OpFieldLoad, OpFieldStore, OpTupleGet:
		fmt.Fprintf(&b, " #%d", in.FieldSlot)
	case OpGlobalLoad, OpGlobalStore:
		fmt.Fprintf(&b, " @%s", in.Global.Name)
	}
	if len(in.TypeArgs) > 0 {
		b.WriteString(" <")
		for i, t := range in.TypeArgs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteString(">")
	}
	for _, a := range in.Args {
		b.WriteString(" ")
		b.WriteString(a.String())
	}
	for _, blk := range in.Blocks {
		fmt.Fprintf(&b, " b%d", blk.ID)
	}
	if in.StackAlloc {
		b.WriteString(" [stack]")
	}
	return b.String()
}

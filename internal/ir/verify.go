package ir

import (
	"context"
	"fmt"

	"repro/internal/par"
	"repro/internal/types"
)

// Verify performs full typed verification of a module, extending the
// structural checks of Validate with type-aware rules:
//
//   - per-opcode register-type agreement: each instruction's operand
//     and result registers carry types compatible with the opcode;
//   - def-before-use: a forward dataflow over the CFG proves every
//     register is defined on all paths before each use;
//   - call-site agreement: arity and (substituted) signature of every
//     call match the callee Func, and callees/globals/vtable entries
//     belong to the module;
//   - stage-conditional invariants: after monomorphization no type
//     parameters remain anywhere (§4.3) and call sites carry no type
//     arguments; after normalization no tuple opcodes or tuple-typed
//     registers remain (§4.2).
//
// Before monomorphization register types may be open (mention type
// parameters); the verifier is deliberately tolerant there — any rule
// involving an open type is deferred to the post-mono verification,
// where every type must be closed and checks are exact.
func (m *Module) Verify() error { return m.VerifyConcurrent(context.Background(), 1) }

// VerifyConcurrent is Verify with the per-function checks fanned out on
// up to jobs workers (jobs <= 1 verifies sequentially). The verifier's
// lookup structures are frozen before the fan-out and verifyFunc only
// reads them, so the reported error is the same — the one for the
// lowest-index function — for every jobs value. The module-membership
// and vtable-shape checks are whole-program and stay sequential.
func (m *Module) VerifyConcurrent(ctx context.Context, jobs int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	v := newVerifier(m)
	if m.Main != nil && !v.funcs[m.Main] {
		return fmt.Errorf("main function %s is not in the module", m.Main.Name)
	}
	if m.Init != nil && !v.funcs[m.Init] {
		return fmt.Errorf("init function %s is not in the module", m.Init.Name)
	}
	if err := par.Run(ctx, "verify", jobs, len(m.Funcs), func(i int) error {
		f := m.Funcs[i]
		if err := v.verifyFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
		return nil
	}); err != nil {
		return err
	}
	return v.verifyShapes()
}

// verifier carries the per-module lookup structures: membership sets
// for funcs and globals (call/global targets must resolve inside the
// module) and class indexes keyed both by closed instantiation type
// (post-mono) and by definition (pre-mono).
type verifier struct {
	m       *Module
	tc      *types.Cache
	funcs   map[*Func]bool
	globals map[*Global]bool
	byType  map[*types.Class]*Class
	byDef   map[*types.ClassDef]*Class
}

func newVerifier(m *Module) *verifier {
	v := &verifier{
		m:       m,
		tc:      m.Types,
		funcs:   make(map[*Func]bool, len(m.Funcs)),
		globals: make(map[*Global]bool, len(m.Globals)),
		byType:  make(map[*types.Class]*Class, len(m.Classes)),
		byDef:   make(map[*types.ClassDef]*Class, len(m.Classes)),
	}
	for _, f := range m.Funcs {
		v.funcs[f] = true
	}
	for _, g := range m.Globals {
		v.globals[g] = true
	}
	for _, c := range m.Classes {
		if c.Type != nil {
			v.byType[c.Type] = c
		}
		if c.Def != nil {
			if _, ok := v.byDef[c.Def]; !ok {
				v.byDef[c.Def] = c
			}
		}
	}
	return v
}

// classFor resolves the IR class metadata for a receiver type. After
// monomorphization every materialized instantiation is indexed by its
// closed type; before, there is exactly one IR class per definition.
// Returns nil when the type is not materialized (the caller skips the
// dependent checks rather than guessing).
func (v *verifier) classFor(ct *types.Class) *Class {
	if c, ok := v.byType[ct]; ok {
		return c
	}
	if !v.m.Monomorphic {
		return v.byDef[ct.Def]
	}
	return nil
}

// open reports whether a rule touching t must be deferred: open types
// are legal only before monomorphization, where substitution has not
// yet closed them and exact agreement cannot be decided.
func (v *verifier) open(t types.Type) bool {
	return !v.m.Monomorphic && types.HasTypeParams(t)
}

// assignable is the verifier's compatibility relation: subtyping on
// closed types, tolerance on open ones. Subtyping rather than equality
// is required because optimization legally weakens operand types (copy
// propagation substitutes subtype-typed sources; cast elision rewrites
// a cast to a move from the subtype).
func (v *verifier) assignable(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if from == to {
		return true
	}
	if v.open(from) || v.open(to) {
		return true
	}
	return v.tc.IsSubtype(from, to)
}

// comparable reports whether two operand types may hold comparable
// values: one must be assignable to the other (equality operands are
// adapted to a common static type, but optimization may narrow either
// side independently).
func (v *verifier) comparable(a, b types.Type) bool {
	return v.assignable(a, b) || v.assignable(b, a)
}

func (v *verifier) isPrim(t types.Type, k types.PrimKind) bool {
	p, ok := t.(*types.Prim)
	return ok && p.Kind == k
}

func (v *verifier) verifyFunc(f *Func) error {
	canon := map[int]*Reg{}
	note := func(r *Reg) error {
		if r == nil {
			return fmt.Errorf("nil register")
		}
		if r.ID < 0 || r.ID >= f.NumRegs() {
			return fmt.Errorf("register %s out of range [0,%d)", r, f.NumRegs())
		}
		if prev, ok := canon[r.ID]; ok && prev != r {
			return fmt.Errorf("two distinct registers share id v%d (foreign register?)", r.ID)
		}
		canon[r.ID] = r
		if r.Type == nil {
			return fmt.Errorf("register %s has no type", r)
		}
		return nil
	}
	for _, p := range f.Params {
		if err := note(p); err != nil {
			return fmt.Errorf("param: %w", err)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, r := range in.Dst {
				if err := note(r); err != nil {
					return fmt.Errorf("block b%d: %s: %w", b.ID, in, err)
				}
			}
			for _, r := range in.Args {
				if err := note(r); err != nil {
					return fmt.Errorf("block b%d: %s: %w", b.ID, in, err)
				}
			}
		}
	}
	if !v.m.Normalized && len(f.Results) != 1 {
		return fmt.Errorf("want exactly 1 result type before normalization, got %d", len(f.Results))
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if err := v.checkInstr(f, in); err != nil {
				return fmt.Errorf("block b%d: %s: %w", b.ID, in, err)
			}
		}
	}
	return v.checkDefUse(f)
}

// ------------------------------------------------------ def-before-use

// checkDefUse runs a forward all-paths dataflow: a register may be
// used only if it is defined on every path from entry. Unreachable
// blocks start from the optimistic "everything defined" state so dead
// merge blocks left by lowering do not trip the check.
func (v *verifier) checkDefUse(f *Func) error {
	words := (f.NumRegs() + 63) / 64
	full := make([]uint64, words)
	for i := range full {
		full[i] = ^uint64(0)
	}
	clone := func(s []uint64) []uint64 { return append([]uint64(nil), s...) }

	preds := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil {
			for _, s := range t.Blocks {
				preds[s] = append(preds[s], b)
			}
		}
	}
	entryIn := make([]uint64, words)
	for _, p := range f.Params {
		entryIn[p.ID/64] |= 1 << (p.ID % 64)
	}
	// transfer computes the out-set of b from a given in-set.
	transfer := func(b *Block, in []uint64) []uint64 {
		out := clone(in)
		for _, instr := range b.Instrs {
			for _, d := range instr.Dst {
				out[d.ID/64] |= 1 << (d.ID % 64)
			}
		}
		return out
	}
	out := map[*Block][]uint64{}
	for _, b := range f.Blocks {
		out[b] = full
	}
	inOf := func(b *Block) []uint64 {
		if len(f.Blocks) > 0 && b == f.Blocks[0] {
			return clone(entryIn)
		}
		ps := preds[b]
		if len(ps) == 0 {
			return clone(full) // unreachable: optimistic
		}
		in := clone(out[ps[0]])
		for _, p := range ps[1:] {
			po := out[p]
			for i := range in {
				in[i] &= po[i]
			}
		}
		return in
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			nout := transfer(b, inOf(b))
			old := out[b]
			for i := range nout {
				if nout[i] != old[i] {
					out[b] = nout
					changed = true
					break
				}
			}
		}
	}
	for _, b := range f.Blocks {
		live := inOf(b)
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if live[a.ID/64]&(1<<(a.ID%64)) == 0 {
					return fmt.Errorf("block b%d: %s: register %s used before definition", b.ID, in, a)
				}
			}
			for _, d := range in.Dst {
				live[d.ID/64] |= 1 << (d.ID % 64)
			}
		}
	}
	return nil
}

// ------------------------------------------------------- instructions

func (v *verifier) checkInstr(f *Func, in *Instr) error {
	dt := func(i int) types.Type { return in.Dst[i].Type }
	at := func(i int) types.Type { return in.Args[i].Type }
	wantDst := func(i int, k types.PrimKind, what string) error {
		if !v.isPrim(dt(i), k) && !v.open(dt(i)) {
			return fmt.Errorf("result must be %s, got %s", what, dt(i))
		}
		return nil
	}
	wantArg := func(i int, k types.PrimKind, what string) error {
		if !v.isPrim(at(i), k) && !v.open(at(i)) {
			return fmt.Errorf("operand %d must be %s, got %s", i, what, at(i))
		}
		return nil
	}

	switch in.Op {
	case OpNop:
		return nil

	case OpConstInt:
		return wantDst(0, types.KindInt, "int")
	case OpConstByte:
		return wantDst(0, types.KindByte, "byte")
	case OpConstBool:
		return wantDst(0, types.KindBool, "bool")
	case OpConstVoid:
		return wantDst(0, types.KindVoid, "void")
	case OpConstString:
		if dt(0) != v.tc.String() && !v.open(dt(0)) {
			return fmt.Errorf("result must be Array<byte>, got %s", dt(0))
		}
		return nil
	case OpConstNull:
		if in.Type == nil {
			return fmt.Errorf("missing type")
		}
		if !v.assignable(in.Type, dt(0)) {
			return fmt.Errorf("null of %s into register of %s", in.Type, dt(0))
		}
		return nil

	case OpMove:
		if !v.assignable(at(0), dt(0)) {
			return fmt.Errorf("move %s into register of %s", at(0), dt(0))
		}
		return nil

	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpShl, OpShr, OpAnd, OpOr, OpXor:
		for i := range in.Args {
			if err := wantArg(i, types.KindInt, "int"); err != nil {
				return err
			}
		}
		return wantDst(0, types.KindInt, "int")
	case OpNeg:
		if err := wantArg(0, types.KindInt, "int"); err != nil {
			return err
		}
		return wantDst(0, types.KindInt, "int")

	case OpLt, OpLe, OpGt, OpGe:
		// Type is the operand type: int or byte (§2.5 comparisons).
		if in.Type != nil && !v.open(in.Type) {
			if !v.isPrim(in.Type, types.KindInt) && !v.isPrim(in.Type, types.KindByte) {
				return fmt.Errorf("comparison on non-numeric type %s", in.Type)
			}
			for i := range in.Args {
				if !v.assignable(at(i), in.Type) {
					return fmt.Errorf("operand %d has %s, want %s", i, at(i), in.Type)
				}
			}
		}
		return wantDst(0, types.KindBool, "bool")

	case OpEq, OpNe:
		if !v.comparable(at(0), at(1)) {
			return fmt.Errorf("equality on incompatible types %s and %s", at(0), at(1))
		}
		return wantDst(0, types.KindBool, "bool")

	case OpNot, OpBoolAnd, OpBoolOr:
		for i := range in.Args {
			if err := wantArg(i, types.KindBool, "bool"); err != nil {
				return err
			}
		}
		return wantDst(0, types.KindBool, "bool")

	case OpMakeTuple:
		if in.Type == nil {
			return fmt.Errorf("missing tuple type")
		}
		if tt, ok := in.Type.(*types.Tuple); ok && !v.open(in.Type) {
			if len(in.Args) != len(tt.Elems) {
				return fmt.Errorf("tuple of %d elements built from %d operands", len(tt.Elems), len(in.Args))
			}
			for i, e := range tt.Elems {
				if !v.assignable(at(i), e) {
					return fmt.Errorf("element %d has %s, want %s", i, at(i), e)
				}
			}
		}
		if !v.assignable(in.Type, dt(0)) {
			return fmt.Errorf("tuple %s into register of %s", in.Type, dt(0))
		}
		return nil
	case OpTupleGet:
		if tt, ok := at(0).(*types.Tuple); ok {
			if in.FieldSlot < 0 || in.FieldSlot >= len(tt.Elems) {
				return fmt.Errorf("tuple index %d out of range for %s", in.FieldSlot, at(0))
			}
			if !v.assignable(tt.Elems[in.FieldSlot], dt(0)) {
				return fmt.Errorf("element %s into register of %s", tt.Elems[in.FieldSlot], dt(0))
			}
		} else if !v.open(at(0)) {
			return fmt.Errorf("tuple.get on non-tuple %s", at(0))
		}
		return nil

	case OpNewObject:
		ct, ok := in.Type.(*types.Class)
		if !ok {
			return fmt.Errorf("new of non-class type %s", in.Type)
		}
		if !v.assignable(ct, dt(0)) {
			return fmt.Errorf("new %s into register of %s", ct, dt(0))
		}
		return nil

	case OpFieldLoad, OpFieldStore:
		ct, ok := at(0).(*types.Class)
		if !ok {
			if v.open(at(0)) {
				return nil
			}
			return fmt.Errorf("field access on non-class %s", at(0))
		}
		cls := v.classFor(ct)
		if cls == nil {
			if v.m.Monomorphic {
				return fmt.Errorf("field access on unmaterialized class %s", ct)
			}
			return nil
		}
		if in.FieldSlot < 0 || in.FieldSlot >= len(cls.Fields) {
			return fmt.Errorf("field slot %d out of range for %s (%d fields)", in.FieldSlot, cls.Name, len(cls.Fields))
		}
		ftype := cls.Fields[in.FieldSlot].Type
		if len(ct.Def.TypeParams) == len(ct.Args) {
			ftype = v.tc.Subst(ftype, types.BindParams(ct.Def.TypeParams, ct.Args))
		}
		if in.Op == OpFieldLoad {
			if !v.assignable(ftype, dt(0)) {
				return fmt.Errorf("field %s of %s into register of %s", cls.Fields[in.FieldSlot].Name, ftype, dt(0))
			}
		} else if !v.assignable(at(1), ftype) {
			return fmt.Errorf("store of %s into field %s of %s", at(1), cls.Fields[in.FieldSlot].Name, ftype)
		}
		return nil

	case OpNullCheck:
		if !types.IsRefType(at(0)) && !v.open(at(0)) && !v.isPrim(at(0), types.KindNull) {
			return fmt.Errorf("nullcheck of non-reference %s", at(0))
		}
		return nil

	case OpArrayNew:
		att, ok := in.Type.(*types.Array)
		if !ok {
			if v.open(in.Type) {
				return nil
			}
			return fmt.Errorf("array.new of non-array type %s", in.Type)
		}
		if err := wantArg(0, types.KindInt, "int"); err != nil {
			return err
		}
		if !v.assignable(att, dt(0)) {
			return fmt.Errorf("new %s into register of %s", att, dt(0))
		}
		return nil
	case OpArrayLoad:
		if len(in.Args) != 2 {
			return fmt.Errorf("want 2 args, got %d", len(in.Args))
		}
		if len(in.Dst) > 1 {
			return fmt.Errorf("want at most 1 dst, got %d", len(in.Dst))
		}
		if err := wantArg(1, types.KindInt, "int"); err != nil {
			return err
		}
		att, ok := at(0).(*types.Array)
		if !ok {
			if v.open(at(0)) {
				return nil
			}
			return fmt.Errorf("array.load on non-array %s", at(0))
		}
		if len(in.Dst) == 1 && !v.assignable(att.Elem, dt(0)) {
			return fmt.Errorf("element %s into register of %s", att.Elem, dt(0))
		}
		return nil
	case OpArrayStore:
		if err := wantArg(1, types.KindInt, "int"); err != nil {
			return err
		}
		att, ok := at(0).(*types.Array)
		if !ok {
			if v.open(at(0)) {
				return nil
			}
			return fmt.Errorf("array.store on non-array %s", at(0))
		}
		if !v.assignable(at(2), att.Elem) {
			return fmt.Errorf("store of %s into array of %s", at(2), att.Elem)
		}
		return nil
	case OpArrayLen:
		if _, ok := at(0).(*types.Array); !ok && !v.open(at(0)) {
			return fmt.Errorf("array.len on non-array %s", at(0))
		}
		return wantDst(0, types.KindInt, "int")

	case OpGlobalLoad:
		if !v.globals[in.Global] {
			return fmt.Errorf("global @%s is not in the module", in.Global.Name)
		}
		if !v.assignable(in.Global.Type, dt(0)) {
			return fmt.Errorf("global %s into register of %s", in.Global.Type, dt(0))
		}
		return nil
	case OpGlobalStore:
		if !v.globals[in.Global] {
			return fmt.Errorf("global @%s is not in the module", in.Global.Name)
		}
		if !v.assignable(at(0), in.Global.Type) {
			return fmt.Errorf("store of %s into global of %s", at(0), in.Global.Type)
		}
		return nil

	case OpCallStatic:
		return v.checkCallStatic(f, in)
	case OpCallVirtual:
		return v.checkCallVirtual(f, in)
	case OpCallIndirect:
		return v.checkCallIndirect(f, in)
	case OpCallBuiltin:
		if in.SVal == "" {
			return fmt.Errorf("builtin call without a name")
		}
		return nil

	case OpMakeClosure:
		if !v.funcs[in.Fn] {
			return fmt.Errorf("closure over function %s outside the module", in.Fn.Name)
		}
		if len(in.TypeArgs) != len(in.Fn.TypeParams) {
			return fmt.Errorf("closure over %s with %d type args, want %d", in.Fn.Name, len(in.TypeArgs), len(in.Fn.TypeParams))
		}
		if in.Type2 != nil && !v.assignable(in.Type2, dt(0)) {
			return fmt.Errorf("closure of %s into register of %s", in.Type2, dt(0))
		}
		return nil
	case OpMakeBound:
		ct, ok := at(0).(*types.Class)
		if !ok {
			if v.open(at(0)) {
				return nil
			}
			return fmt.Errorf("bound closure over non-class receiver %s", at(0))
		}
		if cls := v.classFor(ct); cls != nil && in.FieldSlot >= len(cls.Vtable) {
			return fmt.Errorf("bound closure vtable slot %d out of range for %s", in.FieldSlot, cls.Name)
		}
		if in.Type2 != nil && !v.assignable(in.Type2, dt(0)) {
			return fmt.Errorf("bound closure of %s into register of %s", in.Type2, dt(0))
		}
		return nil

	case OpConstEnum:
		et, ok := in.Type.(*types.Enum)
		if !ok {
			return fmt.Errorf("const.enum of non-enum type %s", in.Type)
		}
		if in.IVal < 0 || in.IVal >= int64(len(et.Def.Cases)) {
			return fmt.Errorf("enum case %d out of range for %s", in.IVal, et)
		}
		if !v.assignable(et, dt(0)) {
			return fmt.Errorf("enum %s into register of %s", et, dt(0))
		}
		return nil
	case OpEnumTag:
		if _, ok := at(0).(*types.Enum); !ok && !v.open(at(0)) {
			return fmt.Errorf("enum.tag of non-enum %s", at(0))
		}
		return wantDst(0, types.KindInt, "int")
	case OpEnumName:
		if _, ok := at(0).(*types.Enum); !ok && !v.open(at(0)) {
			return fmt.Errorf("enum.name of non-enum %s", at(0))
		}
		if dt(0) != v.tc.String() && !v.open(dt(0)) {
			return fmt.Errorf("enum.name result must be Array<byte>, got %s", dt(0))
		}
		return nil

	case OpTypeCast:
		if in.Type == nil || in.Type2 == nil {
			return fmt.Errorf("cast without target/source types")
		}
		if !v.assignable(at(0), in.Type2) {
			return fmt.Errorf("cast operand %s does not fit declared source %s", at(0), in.Type2)
		}
		if !v.assignable(in.Type, dt(0)) {
			return fmt.Errorf("cast target %s into register of %s", in.Type, dt(0))
		}
		return nil
	case OpTypeQuery:
		if in.Type == nil || in.Type2 == nil {
			return fmt.Errorf("query without target/source types")
		}
		if !v.assignable(at(0), in.Type2) {
			return fmt.Errorf("query operand %s does not fit declared source %s", at(0), in.Type2)
		}
		return wantDst(0, types.KindBool, "bool")

	case OpRet:
		return v.checkRet(f, in)
	case OpJump:
		return nil
	case OpBranch:
		return wantArg(0, types.KindBool, "bool")
	case OpThrow:
		if in.SVal == "" {
			return fmt.Errorf("throw without an exception name")
		}
		return nil
	}
	return nil
}

// checkRet accepts a bare ret in any function (lowering emits one when
// control falls off the end of a body whose value paths all returned);
// a ret with operands must agree with the declared results.
func (v *verifier) checkRet(f *Func, in *Instr) error {
	if len(in.Args) == 0 {
		return nil
	}
	if !v.m.Normalized {
		if len(in.Args) != 1 {
			return fmt.Errorf("multi-value ret before normalization")
		}
		if !v.assignable(in.Args[0].Type, f.Results[0]) {
			return fmt.Errorf("ret of %s, want %s", in.Args[0].Type, f.Results[0])
		}
		return nil
	}
	if len(in.Args) != len(f.Results) {
		return fmt.Errorf("ret of %d values, want %d", len(in.Args), len(f.Results))
	}
	for i, r := range f.Results {
		if !v.assignable(in.Args[i].Type, r) {
			return fmt.Errorf("ret value %d has %s, want %s", i, in.Args[i].Type, r)
		}
	}
	return nil
}

// checkCallDsts verifies result registers against the callee's
// (substituted) result types: before normalization a call has one
// result register unless the result is void; after, one per scalar.
func (v *verifier) checkCallDsts(in *Instr, results []types.Type) error {
	if !v.m.Normalized {
		if len(in.Dst) > 1 {
			return fmt.Errorf("multi-result call before normalization")
		}
		if len(in.Dst) == 1 && !v.assignable(results[0], in.Dst[0].Type) {
			return fmt.Errorf("result %s into register of %s", results[0], in.Dst[0].Type)
		}
		return nil
	}
	if len(in.Dst) != len(results) {
		return fmt.Errorf("call has %d result registers, callee returns %d", len(in.Dst), len(results))
	}
	for i, r := range results {
		if !v.assignable(r, in.Dst[i].Type) {
			return fmt.Errorf("result %d of %s into register of %s", i, r, in.Dst[i].Type)
		}
	}
	return nil
}

func (v *verifier) checkCallStatic(f *Func, in *Instr) error {
	callee := in.Fn
	if !v.funcs[callee] {
		return fmt.Errorf("call targets %s outside the module", callee.Name)
	}
	if len(in.TypeArgs) != len(callee.TypeParams) {
		return fmt.Errorf("call to %s with %d type args, want %d", callee.Name, len(in.TypeArgs), len(callee.TypeParams))
	}
	if len(in.Args) != len(callee.Params) {
		return fmt.Errorf("call to %s with %d args, want %d", callee.Name, len(in.Args), len(callee.Params))
	}
	var env map[*types.TypeParamDef]types.Type
	if len(callee.TypeParams) > 0 {
		env = types.BindParams(callee.TypeParams, in.TypeArgs)
	}
	subst := func(t types.Type) types.Type {
		if env == nil {
			return t
		}
		return v.tc.Subst(t, env)
	}
	for i, p := range callee.Params {
		if want := subst(p.Type); !v.assignable(in.Args[i].Type, want) {
			return fmt.Errorf("arg %d has %s, %s wants %s", i, in.Args[i].Type, callee.Name, want)
		}
	}
	results := make([]types.Type, len(callee.Results))
	for i, r := range callee.Results {
		results[i] = subst(r)
	}
	return v.checkCallDsts(in, results)
}

func (v *verifier) checkCallVirtual(f *Func, in *Instr) error {
	ct, ok := in.Type.(*types.Class)
	if !ok {
		return fmt.Errorf("virtual call through non-class type %s", in.Type)
	}
	if !v.assignable(in.Args[0].Type, ct) {
		return fmt.Errorf("receiver %s is not a %s", in.Args[0].Type, ct)
	}
	cls := v.classFor(ct)
	if cls == nil {
		if v.m.Monomorphic {
			return fmt.Errorf("virtual call through unmaterialized class %s", ct)
		}
		return nil
	}
	if in.FieldSlot >= len(cls.Vtable) {
		return fmt.Errorf("vtable slot %d out of range for %s (%d slots)", in.FieldSlot, cls.Name, len(cls.Vtable))
	}
	callee := cls.Vtable[in.FieldSlot]
	if callee == nil {
		// Monomorphization pads remapped dispatch tables with nil for
		// slot/type-argument combinations never reached on this branch
		// of the hierarchy; such a slot cannot be invoked at runtime.
		return nil
	}
	if len(in.Args) != len(callee.Params) {
		return fmt.Errorf("virtual call to %s with %d args, want %d", callee.Name, len(in.Args), len(callee.Params))
	}
	if len(callee.TypeParams) > 0 {
		// Open callee: method type arguments must line up; parameter
		// agreement is deferred to post-mono, where slots are exact.
		if len(in.TypeArgs) != len(callee.TypeParams)-callee.NumClassParams {
			return fmt.Errorf("virtual call to %s with %d method type args, want %d",
				callee.Name, len(in.TypeArgs), len(callee.TypeParams)-callee.NumClassParams)
		}
		return nil
	}
	for i, p := range callee.Params {
		if !v.assignable(in.Args[i].Type, p.Type) {
			return fmt.Errorf("arg %d has %s, %s wants %s", i, in.Args[i].Type, callee.Name, p.Type)
		}
	}
	return v.checkCallDsts(in, callee.Results)
}

func (v *verifier) checkCallIndirect(f *Func, in *Instr) error {
	ft, ok := in.Args[0].Type.(*types.Func)
	if !ok {
		if v.open(in.Args[0].Type) {
			return nil
		}
		return fmt.Errorf("indirect call through non-function %s", in.Args[0].Type)
	}
	if !v.m.Normalized {
		// Arity adaptation between the static function type and the
		// eventual target is dynamic before normalization (§3.2); only
		// the result register is statically constrained.
		return v.checkCallDsts(in, []types.Type{ft.Ret})
	}
	params := types.Flatten(v.tc, ft.Param, nil)
	if len(in.Args)-1 != len(params) {
		return fmt.Errorf("indirect call with %d args, function type %s wants %d", len(in.Args)-1, ft, len(params))
	}
	for i, p := range params {
		if !v.assignable(in.Args[i+1].Type, p) {
			return fmt.Errorf("arg %d has %s, function type wants %s", i, in.Args[i+1].Type, p)
		}
	}
	return v.checkCallDsts(in, types.Flatten(v.tc, ft.Ret, nil))
}

// ------------------------------------------------------- stage sweeps

// verifyShapes enforces the stage-conditional whole-module invariants:
// after monomorphization, no open type and no type-argument list may
// survive anywhere (§4.3); after normalization, no tuple type may
// survive in any register, parameter, result, field, or global (§4.2).
func (v *verifier) verifyShapes() error {
	if v.m.Monomorphic {
		if err := v.sweepTypes("monomorphic", func(t types.Type) error {
			if types.HasTypeParams(t) {
				return fmt.Errorf("open type %s in monomorphic module", t)
			}
			return nil
		}); err != nil {
			return err
		}
		for _, fn := range v.m.Funcs {
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					if len(in.TypeArgs) > 0 {
						return fmt.Errorf("func %s: block b%d: %s: type arguments in monomorphic module", fn.Name, b.ID, in)
					}
				}
			}
		}
	}
	if v.m.Normalized {
		if err := v.sweepTypes("normalized", func(t types.Type) error {
			if _, ok := t.(*types.Tuple); ok {
				return fmt.Errorf("tuple type %s in normalized module", t)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// sweepTypes applies check to every type mentioned by the module:
// function signatures, register types, instruction type payloads,
// class fields, and globals.
func (v *verifier) sweepTypes(stage string, check func(types.Type) error) error {
	seenReg := map[*Reg]bool{}
	reg := func(where string, r *Reg) error {
		if r == nil || seenReg[r] {
			return nil
		}
		seenReg[r] = true
		if err := check(r.Type); err != nil {
			return fmt.Errorf("%s: register %s: %w", where, r, err)
		}
		return nil
	}
	for _, fn := range v.m.Funcs {
		for _, p := range fn.Params {
			if err := reg("func "+fn.Name, p); err != nil {
				return err
			}
		}
		for i, r := range fn.Results {
			if err := check(r); err != nil {
				return fmt.Errorf("func %s: result %d: %w", fn.Name, i, err)
			}
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				where := fmt.Sprintf("func %s: block b%d", fn.Name, b.ID)
				for _, r := range in.Dst {
					if err := reg(where, r); err != nil {
						return err
					}
				}
				for _, r := range in.Args {
					if err := reg(where, r); err != nil {
						return err
					}
				}
				for _, t := range [...]types.Type{in.Type, in.Type2} {
					if t == nil {
						continue
					}
					// Cast/query targets and virtual-dispatch receiver
					// types feed runtime type tests and must be closed;
					// Type2 of closures records the pre-normalization
					// static function type and may mention tuples.
					if stage == "normalized" && (in.Op == OpMakeClosure || in.Op == OpMakeBound || in.Op == OpCallIndirect) {
						continue
					}
					if err := check(t); err != nil {
						return fmt.Errorf("%s: %s: %w", where, in, err)
					}
				}
			}
		}
	}
	for _, c := range v.m.Classes {
		for _, fd := range c.Fields {
			if err := check(fd.Type); err != nil {
				return fmt.Errorf("class %s: field %s: %w", c.Name, fd.Name, err)
			}
		}
	}
	for _, g := range v.m.Globals {
		if err := check(g.Type); err != nil {
			return fmt.Errorf("global %s: %w", g.Name, err)
		}
	}
	return nil
}

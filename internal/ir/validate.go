package ir

import (
	"fmt"

	"repro/internal/types"
)

// Validate checks structural invariants of a module: every block ends
// in exactly one terminator, branch targets belong to the function,
// instruction operand counts match their opcodes, and — for normalized
// modules — no tuple instructions or tuple-typed registers remain.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if err := m.validateFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	inModule := make(map[*Func]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		inModule[f] = true
	}
	for _, c := range m.Classes {
		for i, fn := range c.Vtable {
			if fn != nil && !inModule[fn] {
				return fmt.Errorf("class %s: vtable slot %d points outside the module", c.Name, i)
			}
		}
	}
	return nil
}

func (m *Module) validateFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	inFunc := map[*Block]bool{}
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block b%d is empty", b.ID)
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("block b%d: instruction %d (%s): terminator placement", b.ID, i, in.Op)
			}
			if err := m.validateInstr(f, in); err != nil {
				return fmt.Errorf("block b%d: %s: %w", b.ID, in, err)
			}
			for _, t := range in.Blocks {
				if !inFunc[t] {
					return fmt.Errorf("block b%d: %s targets a foreign block", b.ID, in.Op)
				}
			}
		}
	}
	if m.Normalized {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpMakeTuple || in.Op == OpTupleGet {
					return fmt.Errorf("tuple instruction %s in normalized module", in.Op)
				}
				for _, d := range in.Dst {
					if _, isTuple := d.Type.(*types.Tuple); isTuple {
						return fmt.Errorf("tuple-typed register %s in normalized module", d)
					}
				}
			}
		}
	}
	if m.Monomorphic && len(f.TypeParams) > 0 {
		return fmt.Errorf("type parameters in monomorphic module")
	}
	return nil
}

// argCounts lists fixed operand arities; -1 means variable.
var argCounts = map[Op]struct{ dst, args int }{
	OpConstInt: {1, 0}, OpConstByte: {1, 0}, OpConstBool: {1, 0},
	OpConstNull: {1, 0}, OpConstVoid: {1, 0}, OpConstString: {1, 0},
	OpMove: {1, 1},
	OpAdd:  {1, 2}, OpSub: {1, 2}, OpMul: {1, 2}, OpDiv: {1, 2},
	OpMod: {1, 2}, OpShl: {1, 2}, OpShr: {1, 2}, OpAnd: {1, 2},
	OpOr: {1, 2}, OpXor: {1, 2}, OpNeg: {1, 1}, OpNot: {1, 1},
	OpBoolAnd: {1, 2}, OpBoolOr: {1, 2},
	OpLt: {1, 2}, OpLe: {1, 2}, OpGt: {1, 2}, OpGe: {1, 2},
	OpEq: {1, 2}, OpNe: {1, 2},
	OpTupleGet: {1, 1}, OpNewObject: {1, 0},
	OpFieldLoad: {1, 1}, OpFieldStore: {0, 2}, OpNullCheck: {0, 1},
	OpArrayNew: {1, 1}, OpArrayStore: {0, 3}, OpArrayLen: {1, 1},
	OpGlobalLoad: {1, 0}, OpGlobalStore: {0, 1},
	OpMakeClosure: {1, 0}, OpMakeBound: {1, 1},
	OpTypeCast: {1, 1}, OpTypeQuery: {1, 1},
	OpConstEnum: {1, 0}, OpEnumTag: {1, 1}, OpEnumName: {1, 1},
	OpJump: {0, 0}, OpBranch: {0, 1}, OpThrow: {0, 0},
}

func (m *Module) validateInstr(f *Func, in *Instr) error {
	if c, ok := argCounts[in.Op]; ok {
		if len(in.Dst) != c.dst {
			return fmt.Errorf("want %d dst, got %d", c.dst, len(in.Dst))
		}
		if len(in.Args) != c.args {
			return fmt.Errorf("want %d args, got %d", c.args, len(in.Args))
		}
	}
	switch in.Op {
	case OpCallStatic, OpMakeClosure:
		if in.Fn == nil {
			return fmt.Errorf("nil callee")
		}
	case OpCallVirtual:
		if len(in.Args) == 0 {
			return fmt.Errorf("virtual call without receiver")
		}
		if in.FieldSlot < 0 {
			return fmt.Errorf("negative vtable slot")
		}
	case OpCallIndirect:
		if len(in.Args) == 0 {
			return fmt.Errorf("indirect call without callee value")
		}
	case OpGlobalLoad, OpGlobalStore:
		if in.Global == nil {
			return fmt.Errorf("nil global")
		}
	case OpJump:
		if len(in.Blocks) != 1 {
			return fmt.Errorf("jump needs 1 target")
		}
	case OpBranch:
		if len(in.Blocks) != 2 {
			return fmt.Errorf("branch needs 2 targets")
		}
	case OpNewObject, OpArrayNew:
		if in.Type == nil {
			return fmt.Errorf("missing type")
		}
	}
	return nil
}

package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/types"
)

// newFunc builds an empty function with one result type.
func newFunc(name string, ret types.Type) *ir.Func {
	return &ir.Func{Name: name, Results: []types.Type{ret}, VtSlot: -1}
}

func emit(b *ir.Block, in *ir.Instr) *ir.Instr {
	b.Instrs = append(b.Instrs, in)
	return in
}

// wantVerifyError asserts that Verify rejects the module with a
// message mentioning each fragment.
func wantVerifyError(t *testing.T, m *ir.Module, fragments ...string) {
	t.Helper()
	err := m.Verify()
	if err == nil {
		t.Fatalf("Verify accepted a corrupt module")
	}
	for _, frag := range fragments {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("Verify error %q does not mention %q", err, frag)
		}
	}
}

func TestVerifyAcceptsMinimalModule(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Int())
	b := f.NewBlock()
	v := f.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{v}, IVal: 7})
	emit(b, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify rejected a well-formed module: %v", err)
	}
}

// TestVerifyRejectsSeededTypeMismatch seeds the deliberate corruption
// the issue asks for: an int constant moved into a bool register.
func TestVerifyRejectsSeededTypeMismatch(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Void())
	b := f.NewBlock()
	i := f.NewReg(tc.Int(), "")
	c := f.NewReg(tc.Bool(), "")
	emit(b, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{i}, IVal: 1})
	emit(b, &ir.Instr{Op: ir.OpMove, Dst: []*ir.Reg{c}, Args: []*ir.Reg{i}})
	emit(b, &ir.Instr{Op: ir.OpRet})
	wantVerifyError(t, &ir.Module{Types: tc, Funcs: []*ir.Func{f}}, "move int into register of bool")
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Int())
	b := f.NewBlock()
	v := f.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	wantVerifyError(t, &ir.Module{Types: tc, Funcs: []*ir.Func{f}}, "used before definition")
}

// TestVerifyRejectsPartialDefinition defines a register on only one
// branch of a diamond; the all-paths dataflow must flag its use at the
// join.
func TestVerifyRejectsPartialDefinition(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Int())
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	cond := f.NewReg(tc.Bool(), "")
	v := f.NewReg(tc.Int(), "")
	emit(b0, &ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{cond}, IVal: 1})
	emit(b0, &ir.Instr{Op: ir.OpBranch, Args: []*ir.Reg{cond}, Blocks: []*ir.Block{b1, b2}})
	emit(b1, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{v}, IVal: 3})
	emit(b1, &ir.Instr{Op: ir.OpJump, Blocks: []*ir.Block{b3}})
	emit(b2, &ir.Instr{Op: ir.OpJump, Blocks: []*ir.Block{b3}})
	emit(b3, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	wantVerifyError(t, &ir.Module{Types: tc, Funcs: []*ir.Func{f}}, "used before definition")
}

// TestVerifyAcceptsLoopAndDeadBlock exercises the two shapes that must
// NOT be flagged: a back edge to a loop header, and an unreachable
// block using registers it never saw defined (lowering leaves such
// dead merge blocks before optimization).
func TestVerifyAcceptsLoopAndDeadBlock(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Int())
	v := f.NewReg(tc.Int(), "")
	cond := f.NewReg(tc.Bool(), "")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	dead := f.NewBlock()
	emit(b0, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{v}, IVal: 0})
	emit(b0, &ir.Instr{Op: ir.OpJump, Blocks: []*ir.Block{b1}})
	emit(b1, &ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{cond}, IVal: 1})
	emit(b1, &ir.Instr{Op: ir.OpBranch, Args: []*ir.Reg{cond}, Blocks: []*ir.Block{b1, b2}})
	emit(b2, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	emit(dead, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify rejected loop/dead-block shapes: %v", err)
	}
}

func TestVerifyRejectsCallArityMismatch(t *testing.T) {
	tc := types.NewCache()
	callee := newFunc("g", tc.Int())
	callee.Params = []*ir.Reg{callee.NewReg(tc.Int(), "x")}
	cb := callee.NewBlock()
	emit(cb, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{callee.Params[0]}})

	caller := newFunc("f", tc.Void())
	b := caller.NewBlock()
	r := caller.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpCallStatic, Fn: callee, Dst: []*ir.Reg{r}})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{caller, callee}}
	wantVerifyError(t, m, "0 args, want 1")
}

func TestVerifyRejectsCallArgTypeMismatch(t *testing.T) {
	tc := types.NewCache()
	callee := newFunc("g", tc.Int())
	callee.Params = []*ir.Reg{callee.NewReg(tc.Int(), "x")}
	cb := callee.NewBlock()
	emit(cb, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{callee.Params[0]}})

	caller := newFunc("f", tc.Void())
	b := caller.NewBlock()
	s := caller.NewReg(tc.Bool(), "")
	r := caller.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{s}, IVal: 1})
	emit(b, &ir.Instr{Op: ir.OpCallStatic, Fn: callee, Dst: []*ir.Reg{r}, Args: []*ir.Reg{s}})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{caller, callee}}
	wantVerifyError(t, m, "arg 0 has bool")
}

func TestVerifyRejectsForeignCallee(t *testing.T) {
	tc := types.NewCache()
	outside := newFunc("ghost", tc.Void())
	ob := outside.NewBlock()
	emit(ob, &ir.Instr{Op: ir.OpRet})

	caller := newFunc("f", tc.Void())
	b := caller.NewBlock()
	emit(b, &ir.Instr{Op: ir.OpCallStatic, Fn: outside})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{caller}}
	wantVerifyError(t, m, "outside the module")
}

func TestVerifyRejectsForeignRegister(t *testing.T) {
	tc := types.NewCache()
	other := newFunc("g", tc.Void())
	stray := other.NewReg(tc.Int(), "")

	f := newFunc("f", tc.Void())
	b := f.NewBlock()
	mine := f.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{mine}, IVal: 1})
	emit(b, &ir.Instr{Op: ir.OpMove, Dst: []*ir.Reg{f.NewReg(tc.Int(), "")}, Args: []*ir.Reg{stray}})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}}
	wantVerifyError(t, m, "share id")
}

func TestVerifyRejectsBranchOnNonBool(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Void())
	b0, b1 := f.NewBlock(), f.NewBlock()
	v := f.NewReg(tc.Int(), "")
	emit(b0, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{v}, IVal: 1})
	emit(b0, &ir.Instr{Op: ir.OpBranch, Args: []*ir.Reg{v}, Blocks: []*ir.Block{b1, b1}})
	emit(b1, &ir.Instr{Op: ir.OpRet})
	wantVerifyError(t, &ir.Module{Types: tc, Funcs: []*ir.Func{f}}, "must be bool")
}

func TestVerifyRejectsOpenTypeInMonoModule(t *testing.T) {
	tc := types.NewCache()
	tp := tc.NewTypeParamDef("T", 0, nil)
	f := newFunc("f", tc.Void())
	b := f.NewBlock()
	v := f.NewReg(tc.ParamRef(tp), "")
	emit(b, &ir.Instr{Op: ir.OpConstNull, Dst: []*ir.Reg{v}, Type: tc.ParamRef(tp)})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}, Monomorphic: true}
	wantVerifyError(t, m, "open type")
}

func TestVerifyRejectsTypeArgsInMonoModule(t *testing.T) {
	tc := types.NewCache()
	callee := newFunc("g", tc.Void())
	cb := callee.NewBlock()
	emit(cb, &ir.Instr{Op: ir.OpRet})

	f := newFunc("f", tc.Void())
	b := f.NewBlock()
	emit(b, &ir.Instr{Op: ir.OpCallStatic, Fn: callee, TypeArgs: []types.Type{tc.Int()}})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f, callee}, Monomorphic: true}
	wantVerifyError(t, m, "type args")
}

func TestVerifyRejectsTupleParamInNormalizedModule(t *testing.T) {
	tc := types.NewCache()
	pair := tc.TupleOf([]types.Type{tc.Int(), tc.Int()})
	f := &ir.Func{Name: "f", VtSlot: -1}
	f.Params = []*ir.Reg{f.NewReg(pair, "p")}
	b := f.NewBlock()
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}, Monomorphic: true, Normalized: true}
	wantVerifyError(t, m, "tuple type")
}

func TestVerifyRejectsStaleGlobal(t *testing.T) {
	tc := types.NewCache()
	stale := &ir.Global{Name: "gone", Type: tc.Int()}
	f := newFunc("f", tc.Void())
	b := f.NewBlock()
	v := f.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpGlobalLoad, Dst: []*ir.Reg{v}, Global: stale})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}}
	wantVerifyError(t, m, "not in the module")
}

func TestVerifyRejectsRetTypeMismatch(t *testing.T) {
	tc := types.NewCache()
	f := newFunc("f", tc.Bool())
	b := f.NewBlock()
	v := f.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{v}, IVal: 1})
	emit(b, &ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	wantVerifyError(t, &ir.Module{Types: tc, Funcs: []*ir.Func{f}}, "ret of int, want bool")
}

func TestVerifyRejectsFieldSlotOutOfRange(t *testing.T) {
	tc := types.NewCache()
	def := tc.NewClassDef("C", nil, nil)
	ct := tc.ClassOf(def, nil)
	cls := &ir.Class{Name: "C", Def: def, Type: ct, Fields: []ir.Field{{Name: "x", Type: tc.Int()}}}

	f := newFunc("f", tc.Void())
	b := f.NewBlock()
	o := f.NewReg(ct, "")
	v := f.NewReg(tc.Int(), "")
	emit(b, &ir.Instr{Op: ir.OpConstNull, Dst: []*ir.Reg{o}, Type: ct})
	emit(b, &ir.Instr{Op: ir.OpFieldLoad, Dst: []*ir.Reg{v}, Args: []*ir.Reg{o}, FieldSlot: 5})
	emit(b, &ir.Instr{Op: ir.OpRet})
	m := &ir.Module{Types: tc, Funcs: []*ir.Func{f}, Classes: []*ir.Class{cls}}
	wantVerifyError(t, m, "slot 5 out of range")
}

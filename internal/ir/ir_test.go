package ir

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func testFunc(tc *types.Cache) *Func {
	f := &Func{Name: "f", Results: []types.Type{tc.Int()}}
	a := f.NewReg(tc.Int(), "a")
	f.Params = []*Reg{a}
	r := f.NewReg(tc.Int(), "")
	b0 := f.NewBlock()
	b0.Instrs = []*Instr{
		{Op: OpConstInt, Dst: []*Reg{r}, IVal: 1},
		{Op: OpAdd, Dst: []*Reg{r}, Args: []*Reg{a, r}},
		{Op: OpRet, Args: []*Reg{r}},
	}
	return f
}

func TestValidateOK(t *testing.T) {
	tc := types.NewCache()
	mod := &Module{Types: tc, Funcs: []*Func{testFunc(tc)}}
	if err := mod.Validate(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestValidateCatchesMisplacedTerminator(t *testing.T) {
	tc := types.NewCache()
	f := testFunc(tc)
	// Append an instruction after the terminator.
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, &Instr{Op: OpConstInt, Dst: []*Reg{f.NewReg(tc.Int(), "")}})
	mod := &Module{Types: tc, Funcs: []*Func{f}}
	if err := mod.Validate(); err == nil {
		t.Fatal("misplaced terminator accepted")
	}
}

func TestValidateCatchesForeignBlock(t *testing.T) {
	tc := types.NewCache()
	f := testFunc(tc)
	other := &Block{ID: 99, Instrs: []*Instr{{Op: OpRet}}}
	f.Blocks[0].Instrs[2] = &Instr{Op: OpJump, Blocks: []*Block{other}}
	mod := &Module{Types: tc, Funcs: []*Func{f}}
	if err := mod.Validate(); err == nil {
		t.Fatal("foreign block target accepted")
	}
}

func TestValidateCatchesBadArity(t *testing.T) {
	tc := types.NewCache()
	f := testFunc(tc)
	f.Blocks[0].Instrs[1] = &Instr{Op: OpAdd, Dst: []*Reg{f.Params[0]}, Args: []*Reg{f.Params[0]}}
	mod := &Module{Types: tc, Funcs: []*Func{f}}
	if err := mod.Validate(); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestValidateNormalizedRejectsTuples(t *testing.T) {
	tc := types.NewCache()
	f := testFunc(tc)
	tt := tc.TupleOf([]types.Type{tc.Int(), tc.Int()})
	tr := f.NewReg(tt, "")
	f.Blocks[0].Instrs[1] = &Instr{Op: OpMakeTuple, Dst: []*Reg{tr}, Args: []*Reg{f.Params[0], f.Params[0]}, Type: tt}
	mod := &Module{Types: tc, Funcs: []*Func{f}, Monomorphic: true, Normalized: true}
	if err := mod.Validate(); err == nil {
		t.Fatal("tuple instruction accepted in normalized module")
	}
}

func TestPrinter(t *testing.T) {
	tc := types.NewCache()
	f := testFunc(tc)
	mod := &Module{Types: tc, Funcs: []*Func{f}}
	s := mod.String()
	for _, want := range []string{"func f(", "const.int 1", "add", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestNumInstrs(t *testing.T) {
	tc := types.NewCache()
	f := testFunc(tc)
	if f.NumInstrs() != 3 {
		t.Errorf("NumInstrs = %d, want 3", f.NumInstrs())
	}
	mod := &Module{Types: tc, Funcs: []*Func{f, testFunc(tc)}}
	if mod.NumInstrs() != 6 {
		t.Errorf("module NumInstrs = %d, want 6", mod.NumInstrs())
	}
}

func TestIsSubclassOf(t *testing.T) {
	parent := &Class{Name: "P"}
	child := &Class{Name: "C", Parent: parent}
	other := &Class{Name: "O"}
	if !child.IsSubclassOf(parent) || !child.IsSubclassOf(child) {
		t.Error("subclass chain broken")
	}
	if child.IsSubclassOf(other) || parent.IsSubclassOf(child) {
		t.Error("unrelated classes report subclassing")
	}
}

package norm

import (
	"context"
	"testing"

	"repro/internal/ir"
	"repro/internal/types"
)

// TestQSeriesSignatures checks the §4.2 source-to-source example
// (q1-q8) at the signature level: after normalization,
//
//	def m(a: (string, int))  becomes  m(a0: string, a1: int)   (q2')
//	def f(v: void)           becomes  f()                      (q6')
//	def swap() -> (int,int)  returns two scalar results
func TestQSeriesSignatures(t *testing.T) {
	monoMod := compileMono(t, `
def m(a: (string, int)) { }
def f(v: void) { }
def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }
def main() {
	var b = ("hello", 15);
	m(b);
	m("goodbye", b.1);
	f();
	var s = swap(1, 2);
	System.puti(s.0);
}
`)
	normMod, _, err := Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) *ir.Func {
		for _, fn := range normMod.Funcs {
			if fn.Name == name {
				return fn
			}
		}
		t.Fatalf("function %s missing", name)
		return nil
	}
	m := find("m")
	if len(m.Params) != 2 {
		t.Errorf("m should have 2 scalar params (q2'), got %d", len(m.Params))
	} else {
		if _, ok := m.Params[0].Type.(*types.Array); !ok {
			t.Errorf("m param 0 should be string, got %s", m.Params[0].Type)
		}
		if m.Params[1].Type.String() != "int" {
			t.Errorf("m param 1 should be int, got %s", m.Params[1].Type)
		}
	}
	f := find("f")
	if len(f.Params) != 0 {
		t.Errorf("f's void param should vanish (q6'), got %d params", len(f.Params))
	}
	sw := find("swap")
	if len(sw.Params) != 2 || len(sw.Results) != 2 {
		t.Errorf("swap should be (int, int) -> 2 results, got %d params, %d results",
			len(sw.Params), len(sw.Results))
	}
	// Calls in main pass scalars only (q3'-q5').
	main := find("main")
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCallStatic {
				for _, a := range in.Args {
					if _, isTuple := a.Type.(*types.Tuple); isTuple {
						t.Errorf("call in main passes a tuple register: %s", in)
					}
				}
			}
		}
	}
}

// TestMultiResultReconstruction mirrors the §4.2 JVM discussion in
// reverse: the normalized IR returns multiple scalars natively, while
// the boxed (pre-norm) form returns one tuple; both observable
// behaviours agree (covered broadly by the corpus; this pins the
// signature shape).
func TestMultiResultReconstruction(t *testing.T) {
	monoMod := compileMono(t, `
def pair() -> (int, bool) { return (7, true); }
def main() {
	var p = pair();
	System.puti(p.0);
	System.putb(p.1);
}
`)
	for _, fn := range monoMod.Funcs {
		if fn.Name == "pair" && len(fn.Results) != 1 {
			t.Errorf("pre-norm pair returns one (tuple) value, got %d", len(fn.Results))
		}
	}
	normMod, _, err := Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range normMod.Funcs {
		if fn.Name == "pair" && len(fn.Results) != 2 {
			t.Errorf("normalized pair returns two scalars, got %d", len(fn.Results))
		}
	}
	got, _ := run(t, normMod)
	if got != "7true" {
		t.Fatalf("got %q", got)
	}
}

package norm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mono"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/testprogs"
	"repro/internal/typecheck"
)

func compileMono(t *testing.T, source string) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatalf("lower error: %v", err)
	}
	monoMod, _, err := mono.Monomorphize(context.Background(), mod, mono.Config{})
	if err != nil {
		t.Fatalf("mono error: %v", err)
	}
	return monoMod
}

func run(t *testing.T, mod *ir.Module) (string, interp.Stats) {
	t.Helper()
	var out strings.Builder
	it := interp.New(mod, interp.Options{Out: &out})
	if _, err := it.Run(); err != nil {
		t.Fatalf("run error: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String(), it.Stats()
}

// TestCorpusEquivalence runs the corpus after mono+norm and checks
// output equivalence with the expected results.
func TestCorpusEquivalence(t *testing.T) {
	for _, p := range testprogs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			monoMod := compileMono(t, p.Source)
			normMod, _, err := Normalize(context.Background(), monoMod, 1)
			if err != nil {
				t.Fatalf("norm error: %v", err)
			}
			got, _ := run(t, normMod)
			if got != p.Want {
				t.Fatalf("normalized: got %q, want %q", got, p.Want)
			}
		})
	}
}

// TestNoTuplesRemain checks the §4.2 guarantee: after normalization no
// tuple instructions and no tuple-typed registers remain.
func TestNoTuplesRemain(t *testing.T) {
	for _, p := range testprogs.All() {
		monoMod := compileMono(t, p.Source)
		normMod, _, err := Normalize(context.Background(), monoMod, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range normMod.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op == ir.OpMakeTuple || in.Op == ir.OpTupleGet {
						t.Errorf("%s/%s: %s instruction remains after normalization", p.Name, f.Name, in.Op)
					}
				}
			}
		}
	}
}

// TestNoBoxedTuplesAtRuntime checks the paper's no-implicit-allocation
// claim: normalized execution allocates zero boxed tuples (§4.2).
func TestNoBoxedTuplesAtRuntime(t *testing.T) {
	for _, p := range testprogs.All() {
		monoMod := compileMono(t, p.Source)
		normMod, _, err := Normalize(context.Background(), monoMod, 1)
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		it := interp.New(normMod, interp.Options{Out: &out})
		if _, err := it.Run(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if n := it.Stats().TupleAllocs; n != 0 {
			t.Errorf("%s: %d boxed tuples allocated in normalized code, want 0", p.Name, n)
		}
		if n := it.Stats().AdaptPacks; n != 0 {
			t.Errorf("%s: %d dynamic arity adaptations packed tuples, want 0", p.Name, n)
		}
	}
}

// TestFieldAndGlobalSplitting checks the structural effects of
// normalization on fields, globals and arrays of tuples.
func TestFieldAndGlobalSplitting(t *testing.T) {
	monoMod := compileMono(t, `
class P {
	var pos: (int, int);
	var tag: byte;
}
var origin: (int, int) = (3, 4);
def main() {
	var p = P.new();
	p.pos = origin;
	System.puti(p.pos.0 + p.pos.1);
}
`)
	normMod, stats, err := Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FieldsSplit == 0 {
		t.Error("expected tuple fields to be split")
	}
	if stats.GlobalsSplit == 0 {
		t.Error("expected tuple globals to be split")
	}
	var cls *ir.Class
	for _, c := range normMod.Classes {
		if strings.HasPrefix(c.Name, "P") {
			cls = c
		}
	}
	if cls == nil {
		t.Fatal("class P not found")
	}
	if len(cls.Fields) != 3 {
		t.Fatalf("P should have 3 flattened fields, got %d", len(cls.Fields))
	}
	got, _ := run(t, normMod)
	if got != "7" {
		t.Fatalf("got %q", got)
	}
}

// TestVoidFieldNullCheck: accessing a void field of null still throws
// (§4.2: "a null dereference always throws an exception, regardless of
// the field's type").
func TestVoidFieldNullCheck(t *testing.T) {
	monoMod := compileMono(t, `
class C { var v: void; }
def main() {
	var c: C;
	var x = c.v;
}
`)
	normMod, _, err := Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(normMod, interp.Options{})
	_, err = it.Run()
	if err == nil || !strings.Contains(err.Error(), "!NullCheckException") {
		t.Fatalf("want !NullCheckException, got %v", err)
	}
}

// TestVoidArrayBoundsCheck: Array<void> accesses are still bounds
// checked (§4.2).
func TestVoidArrayBoundsCheck(t *testing.T) {
	monoMod := compileMono(t, `
def main() {
	var v = Array<void>.new(2);
	v[5];
}
`)
	normMod, _, err := Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(normMod, interp.Options{})
	_, err = it.Run()
	if err == nil || !strings.Contains(err.Error(), "!BoundsCheckException") {
		t.Fatalf("want !BoundsCheckException, got %v", err)
	}
}

// TestRequiresMonomorphic: normalization refuses polymorphic input.
func TestRequiresMonomorphic(t *testing.T) {
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", testprogs.Get("hello").Source, errs)
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatal(errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatalf("lower error: %v", err)
	}
	if _, _, err := Normalize(context.Background(), mod, 1); err == nil {
		t.Fatal("expected an error normalizing a polymorphic module")
	}
}

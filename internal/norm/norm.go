// Package norm implements whole-program tuple normalization (§4.2):
// scalar replacement of aggregates. Every register, parameter, return
// value, field, global, and array of tuple type is rewritten into zero
// or more scalars, so that after this pass:
//
//   - no OpMakeTuple/OpTupleGet instructions remain,
//   - all calls pass scalar arguments and return scalar results,
//   - arrays of tuples are parallel scalar arrays,
//   - fields of type void are removed (accesses become null checks),
//   - Array<void> is a length-only array with bounds checks preserved,
//
// which guarantees no implicit heap allocation for tuples and removes
// the calling-convention ambiguity of §4.1.
//
// Normalization requires a monomorphic module: it relies on knowing the
// closed type of every expression (§4.2, last paragraph).
package norm

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/par"
	"repro/internal/src"
	"repro/internal/types"
)

// Stats summarizes the normalization transformation.
type Stats struct {
	TuplesEliminated int // MakeTuple instructions removed
	FieldsSplit      int // class fields that expanded to != 1 scalars
	GlobalsSplit     int
	ParamsSplit      int
}

type normalizer struct {
	in  *ir.Module
	out *ir.Module
	tc  *types.Cache

	funcMap   map[*ir.Func]*ir.Func
	classMap  map[*ir.Class]*ir.Class
	globalMap map[*ir.Global][]*ir.Global
	// fieldMap[class][oldSlot] = (start, count) in the new layout.
	fieldMap map[*ir.Class][][2]int
	inByType map[*types.Class]*ir.Class
	stats    Stats

	// flat memoizes scalar expansions. Types are interned, so the
	// pointer is the key; bodies normalize concurrently, hence the
	// read-mostly lock. Callers must not mutate returned slices.
	flatMu sync.RWMutex
	flat   map[types.Type][]types.Type
}

// Normalize flattens all tuples in a monomorphic module, returning a
// new module. Function bodies are rewritten on up to jobs workers
// (jobs <= 1 is sequential); the declaration phases and vtable layout
// are whole-program barriers and always run sequentially. The output
// is identical for every jobs value.
func Normalize(ctx context.Context, mod *ir.Module, jobs int) (*ir.Module, *Stats, error) {
	return NormalizeSkip(ctx, mod, jobs, nil)
}

// NormalizeSkip is Normalize with a body filter: functions skip reports
// true for (by name) keep their declarations — signature flattening,
// vtable entries, order — but get no body. The declaration phases run
// in full either way. Incremental compilation uses this to skip bodies
// it replaces with cached artifacts.
func NormalizeSkip(ctx context.Context, mod *ir.Module, jobs int, skip func(name string) bool) (*ir.Module, *Stats, error) {
	if !mod.Monomorphic {
		return nil, nil, fmt.Errorf("norm: module must be monomorphized first (§4.2)")
	}
	n := &normalizer{
		in: mod,
		tc: mod.Types,
		out: &ir.Module{
			Types:       mod.Types,
			Monomorphic: true,
			Normalized:  true,
		},
		funcMap:   map[*ir.Func]*ir.Func{},
		classMap:  map[*ir.Class]*ir.Class{},
		globalMap: map[*ir.Global][]*ir.Global{},
		fieldMap:  map[*ir.Class][][2]int{},
		inByType:  map[*types.Class]*ir.Class{},
		flat:      map[types.Type][]types.Type{},
	}
	for _, c := range mod.Classes {
		n.inByType[c.Type] = c
	}
	n.declareGlobals()
	n.declareClasses()
	n.declareFuncs()
	n.fillVtables()
	// Bodies read only the frozen declaration maps and write their own
	// destination function; per-body statistics merge in function order.
	tuples := make([]int, len(mod.Funcs))
	if err := par.Run(ctx, "norm", jobs, len(mod.Funcs), func(i int) error {
		if skip != nil && skip(mod.Funcs[i].Name) {
			return nil
		}
		c, err := n.normalizeBody(mod.Funcs[i])
		tuples[i] = c
		return err
	}); err != nil {
		return nil, nil, err
	}
	for _, c := range tuples {
		n.stats.TuplesEliminated += c
	}
	if mod.Init != nil {
		n.out.Init = n.funcMap[mod.Init]
	}
	if mod.Main != nil {
		n.out.Main = n.funcMap[mod.Main]
	}
	return n.out, &n.stats, nil
}

// flatten returns the scalar expansion of t, memoized per module.
func (n *normalizer) flatten(t types.Type) []types.Type {
	n.flatMu.RLock()
	fs, ok := n.flat[t]
	n.flatMu.RUnlock()
	if ok {
		return fs
	}
	fs = types.Flatten(n.tc, t, nil)
	n.flatMu.Lock()
	n.flat[t] = fs
	n.flatMu.Unlock()
	return fs
}

func (n *normalizer) declareGlobals() {
	idx := 0
	for _, g := range n.in.Globals {
		parts := n.flatten(g.Type)
		var ngs []*ir.Global
		for k, pt := range parts {
			name := g.Name
			if len(parts) > 1 {
				name = fmt.Sprintf("%s.%d", g.Name, k)
			}
			ng := &ir.Global{Name: name, Type: pt, Index: idx}
			idx++
			ngs = append(ngs, ng)
			n.out.Globals = append(n.out.Globals, ng)
		}
		if len(parts) != 1 {
			n.stats.GlobalsSplit++
		}
		n.globalMap[g] = ngs
	}
}

func (n *normalizer) declareClasses() {
	var decl func(c *ir.Class) *ir.Class
	decl = func(c *ir.Class) *ir.Class {
		if nc, ok := n.classMap[c]; ok {
			return nc
		}
		nc := &ir.Class{
			Name:  c.Name,
			Def:   c.Def,
			Args:  c.Args,
			Depth: c.Depth,
			Type:  c.Type,
		}
		n.classMap[c] = nc
		if c.Parent != nil {
			nc.Parent = decl(c.Parent)
		}
		slots := make([][2]int, len(c.Fields))
		for i, fd := range c.Fields {
			parts := n.flatten(fd.Type)
			slots[i] = [2]int{len(nc.Fields), len(parts)}
			for k, pt := range parts {
				name := fd.Name
				if len(parts) > 1 {
					name = fmt.Sprintf("%s.%d", fd.Name, k)
				}
				nc.Fields = append(nc.Fields, ir.Field{Name: name, Type: pt})
			}
			if len(parts) != 1 {
				n.stats.FieldsSplit++
			}
		}
		n.fieldMap[c] = slots
		n.out.Classes = append(n.out.Classes, nc)
		return nc
	}
	for _, c := range n.in.Classes {
		decl(c)
	}
}

func (n *normalizer) declareFuncs() {
	for _, f := range n.in.Funcs {
		nf := &ir.Func{Name: f.Name, Kind: f.Kind, VtSlot: f.VtSlot}
		if f.Class != nil {
			nf.Class = n.classMap[f.Class]
		}
		for _, p := range f.Params {
			parts := n.flatten(p.Type)
			if len(parts) != 1 {
				n.stats.ParamsSplit++
			}
			for k, pt := range parts {
				name := p.Name
				if len(parts) > 1 {
					name = fmt.Sprintf("%s.%d", p.Name, k)
				}
				nf.Params = append(nf.Params, nf.NewReg(pt, name))
			}
		}
		for _, rt := range f.Results {
			nf.Results = append(nf.Results, n.flatten(rt)...)
		}
		n.funcMap[f] = nf
		n.out.Funcs = append(n.out.Funcs, nf)
	}
}

func (n *normalizer) fillVtables() {
	for _, c := range n.in.Classes {
		nc := n.classMap[c]
		nc.Vtable = make([]*ir.Func, len(c.Vtable))
		for i, f := range c.Vtable {
			if f != nil {
				nc.Vtable[i] = n.funcMap[f]
			}
		}
	}
}

// bodyNormalizer rewrites one function body.
type bodyNormalizer struct {
	n      *normalizer
	f      *ir.Func // source
	nf     *ir.Func // destination
	regMap map[*ir.Reg][]*ir.Reg
	blkMap map[*ir.Block]*ir.Block
	cur    *ir.Block
	// pos is the source position of the instruction being normalized;
	// emit stamps it so flattened code keeps source-level traces.
	pos src.Pos
	// tuples counts MakeTuple eliminations in this body alone; bodies
	// run concurrently, so the totals merge after the fan-out.
	tuples int
}

func (n *normalizer) normalizeBody(f *ir.Func) (int, error) {
	nf := n.funcMap[f]
	b := &bodyNormalizer{n: n, f: f, nf: nf, regMap: map[*ir.Reg][]*ir.Reg{}, blkMap: map[*ir.Block]*ir.Block{}}
	// Parameter registers map to the already-created flattened params.
	idx := 0
	for _, p := range f.Params {
		cnt := len(n.flatten(p.Type))
		b.regMap[p] = nf.Params[idx : idx+cnt]
		idx += cnt
	}
	for _, blk := range f.Blocks {
		b.blkMap[blk] = nf.NewBlock()
	}
	for _, blk := range f.Blocks {
		b.cur = b.blkMap[blk]
		for _, in := range blk.Instrs {
			if err := b.instr(in); err != nil {
				return b.tuples, fmt.Errorf("%s: %w", f.Name, err)
			}
		}
	}
	return b.tuples, nil
}

// regs returns the flattened registers for a source register, creating
// them on first use. The result is a fresh slice: instruction Dst and
// Args lists must never alias each other, or later passes rewriting one
// would corrupt the other.
func (b *bodyNormalizer) regs(r *ir.Reg) []*ir.Reg {
	rs, ok := b.regMap[r]
	if !ok {
		parts := b.n.flatten(r.Type)
		rs = make([]*ir.Reg, len(parts))
		for i, pt := range parts {
			name := r.Name
			if len(parts) > 1 {
				name = fmt.Sprintf("%s.%d", r.Name, i)
			}
			rs[i] = b.nf.NewReg(pt, name)
		}
		b.regMap[r] = rs
	}
	out := make([]*ir.Reg, len(rs))
	copy(out, rs)
	return out
}

// flatArgs concatenates the flattened registers of several source regs.
func (b *bodyNormalizer) flatArgs(args []*ir.Reg) []*ir.Reg {
	var out []*ir.Reg
	for _, a := range args {
		out = append(out, b.regs(a)...)
	}
	return out
}

func (b *bodyNormalizer) emit(in *ir.Instr) {
	if !in.Pos.IsValid() {
		in.Pos = b.pos
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// moveAll emits pairwise moves from src to dst registers.
func (b *bodyNormalizer) moveAll(dst, src []*ir.Reg) error {
	if len(dst) != len(src) {
		return fmt.Errorf("norm: move shape mismatch: %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		b.emit(&ir.Instr{Op: ir.OpMove, Dst: []*ir.Reg{dst[i]}, Args: []*ir.Reg{src[i]}})
	}
	return nil
}

// tupleOffsets returns, for tuple type t, the flattened offset and width
// of element idx.
func (b *bodyNormalizer) tupleOffsets(t types.Type, idx int) (int, int, error) {
	tt, ok := t.(*types.Tuple)
	if !ok {
		if idx == 0 {
			return 0, len(b.n.flatten(t)), nil
		}
		return 0, 0, fmt.Errorf("norm: tuple access on non-tuple %s", t)
	}
	off := 0
	for i := 0; i < idx; i++ {
		off += len(b.n.flatten(tt.Elems[i]))
	}
	return off, len(b.n.flatten(tt.Elems[idx])), nil
}

func (b *bodyNormalizer) instr(in *ir.Instr) error {
	b.pos = in.Pos
	switch in.Op {
	case ir.OpNop:
		return nil
	case ir.OpConstInt, ir.OpConstByte, ir.OpConstBool, ir.OpConstString:
		b.emit(&ir.Instr{Op: in.Op, Dst: b.regs(in.Dst[0]), IVal: in.IVal, SVal: in.SVal})
		return nil
	case ir.OpConstVoid:
		b.regs(in.Dst[0]) // expands to no registers
		return nil
	case ir.OpConstEnum:
		b.emit(&ir.Instr{Op: in.Op, Dst: b.regs(in.Dst[0]), IVal: in.IVal, Type: in.Type})
		return nil
	case ir.OpEnumTag, ir.OpEnumName:
		b.emit(&ir.Instr{Op: in.Op, Dst: b.regs(in.Dst[0]), Args: b.flatArgs(in.Args)})
		return nil
	case ir.OpConstNull:
		dst := b.regs(in.Dst[0])
		if len(dst) == 1 {
			b.emit(&ir.Instr{Op: ir.OpConstNull, Dst: dst, Type: in.Type})
		} else if len(dst) != 0 {
			return fmt.Errorf("norm: const.null of non-scalar type %s", in.Type)
		}
		return nil
	case ir.OpMove:
		return b.moveAll(b.regs(in.Dst[0]), b.regs(in.Args[0]))

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpShl,
		ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNeg, ir.OpNot,
		ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpBoolAnd, ir.OpBoolOr:
		b.emit(&ir.Instr{Op: in.Op, Dst: b.regs(in.Dst[0]), Args: b.flatArgs(in.Args), Type: in.Type})
		return nil

	case ir.OpEq, ir.OpNe:
		return b.equality(in)

	case ir.OpMakeTuple:
		// (§4.2 q1'): the tuple's registers are its elements' registers.
		b.tuples++
		return b.moveAll(b.regs(in.Dst[0]), b.flatArgs(in.Args))
	case ir.OpTupleGet:
		src := b.regs(in.Args[0])
		off, width, err := b.tupleOffsets(in.Args[0].Type, in.FieldSlot)
		if err != nil {
			return err
		}
		return b.moveAll(b.regs(in.Dst[0]), src[off:off+width])

	case ir.OpNewObject:
		b.emit(&ir.Instr{Op: ir.OpNewObject, Dst: b.regs(in.Dst[0]), Type: in.Type})
		return nil
	case ir.OpFieldLoad, ir.OpFieldStore:
		return b.fieldAccess(in)
	case ir.OpNullCheck:
		b.emit(&ir.Instr{Op: ir.OpNullCheck, Args: b.regs(in.Args[0])})
		return nil

	case ir.OpArrayNew:
		at := in.Type.(*types.Array)
		parts := b.n.flatten(at.Elem)
		dst := b.regs(in.Dst[0])
		lenReg := b.regs(in.Args[0])
		if len(parts) == 0 {
			// Array<void>: a single length-only array (§4.2).
			b.emit(&ir.Instr{Op: ir.OpArrayNew, Dst: dst, Args: lenReg, Type: at})
			return nil
		}
		for k, pt := range parts {
			b.emit(&ir.Instr{Op: ir.OpArrayNew, Dst: []*ir.Reg{dst[k]}, Args: lenReg, Type: b.n.tc.ArrayOf(pt)})
		}
		return nil
	case ir.OpArrayLoad:
		arrs := b.regs(in.Args[0])
		idx := b.regs(in.Args[1])
		dst := b.regs(in.Dst[0])
		if len(dst) == 0 {
			// Void element: the access is still bounds-checked (§4.2).
			b.emit(&ir.Instr{Op: ir.OpArrayLoad, Args: []*ir.Reg{arrs[0], idx[0]}})
			return nil
		}
		for k := range dst {
			b.emit(&ir.Instr{Op: ir.OpArrayLoad, Dst: []*ir.Reg{dst[k]}, Args: []*ir.Reg{arrs[k], idx[0]}})
		}
		return nil
	case ir.OpArrayStore:
		arrs := b.regs(in.Args[0])
		idx := b.regs(in.Args[1])
		vals := b.regs(in.Args[2])
		if len(vals) == 0 {
			b.emit(&ir.Instr{Op: ir.OpArrayLoad, Args: []*ir.Reg{arrs[0], idx[0]}})
			return nil
		}
		for k := range vals {
			b.emit(&ir.Instr{Op: ir.OpArrayStore, Args: []*ir.Reg{arrs[k], idx[0], vals[k]}})
		}
		return nil
	case ir.OpArrayLen:
		arrs := b.regs(in.Args[0])
		b.emit(&ir.Instr{Op: ir.OpArrayLen, Dst: b.regs(in.Dst[0]), Args: []*ir.Reg{arrs[0]}})
		return nil

	case ir.OpGlobalLoad:
		ngs := b.n.globalMap[in.Global]
		dst := b.regs(in.Dst[0])
		for k, g := range ngs {
			b.emit(&ir.Instr{Op: ir.OpGlobalLoad, Dst: []*ir.Reg{dst[k]}, Global: g})
		}
		return nil
	case ir.OpGlobalStore:
		ngs := b.n.globalMap[in.Global]
		vals := b.regs(in.Args[0])
		for k, g := range ngs {
			b.emit(&ir.Instr{Op: ir.OpGlobalStore, Global: g, Args: []*ir.Reg{vals[k]}})
		}
		return nil

	case ir.OpCallStatic:
		var dst []*ir.Reg
		for _, d := range in.Dst {
			dst = append(dst, b.regs(d)...)
		}
		b.emit(&ir.Instr{Op: ir.OpCallStatic, Dst: dst, Fn: b.n.funcMap[in.Fn], Args: b.flatArgs(in.Args)})
		return nil
	case ir.OpCallVirtual:
		var dst []*ir.Reg
		for _, d := range in.Dst {
			dst = append(dst, b.regs(d)...)
		}
		recv := b.regs(in.Args[0])
		args := append(append([]*ir.Reg{}, recv...), b.flatArgs(in.Args[1:])...)
		b.emit(&ir.Instr{Op: ir.OpCallVirtual, Dst: dst, Args: args, FieldSlot: in.FieldSlot, Type: in.Type})
		return nil
	case ir.OpCallIndirect:
		var dst []*ir.Reg
		for _, d := range in.Dst {
			dst = append(dst, b.regs(d)...)
		}
		cl := b.regs(in.Args[0])
		args := append(append([]*ir.Reg{}, cl...), b.flatArgs(in.Args[1:])...)
		b.emit(&ir.Instr{Op: ir.OpCallIndirect, Dst: dst, Args: args})
		return nil
	case ir.OpCallBuiltin:
		var dst []*ir.Reg
		for _, d := range in.Dst {
			dst = append(dst, b.regs(d)...)
		}
		b.emit(&ir.Instr{Op: ir.OpCallBuiltin, Dst: dst, SVal: in.SVal, Args: b.flatArgs(in.Args)})
		return nil

	case ir.OpMakeClosure:
		b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: b.regs(in.Dst[0]), Fn: b.n.funcMap[in.Fn], Type2: in.Type2})
		return nil
	case ir.OpMakeBound:
		b.emit(&ir.Instr{Op: ir.OpMakeBound, Dst: b.regs(in.Dst[0]), Args: b.regs(in.Args[0]), FieldSlot: in.FieldSlot, Type: in.Type, Type2: in.Type2})
		return nil

	case ir.OpTypeCast:
		return b.cast(in)
	case ir.OpTypeQuery:
		return b.query(in)

	case ir.OpRet:
		b.emit(&ir.Instr{Op: ir.OpRet, Args: b.flatArgs(in.Args)})
		return nil
	case ir.OpJump:
		b.emit(&ir.Instr{Op: ir.OpJump, Blocks: []*ir.Block{b.blkMap[in.Blocks[0]]}})
		return nil
	case ir.OpBranch:
		b.emit(&ir.Instr{Op: ir.OpBranch, Args: b.regs(in.Args[0]), Blocks: []*ir.Block{b.blkMap[in.Blocks[0]], b.blkMap[in.Blocks[1]]}})
		return nil
	case ir.OpThrow:
		b.emit(&ir.Instr{Op: ir.OpThrow, SVal: in.SVal})
		return nil
	}
	return fmt.Errorf("norm: unhandled op %s", in.Op)
}

// fieldAccess remaps a field slot through the flattened class layout.
func (b *bodyNormalizer) fieldAccess(in *ir.Instr) error {
	ct, ok := in.Args[0].Type.(*types.Class)
	if !ok {
		return fmt.Errorf("norm: field access on non-class %s", in.Args[0].Type)
	}
	// Find the IR class for the receiver's static type.
	src := b.n.inByType[ct]
	if src == nil {
		return fmt.Errorf("norm: unknown class %s", ct)
	}
	slots := b.n.fieldMap[src]
	start, count := slots[in.FieldSlot][0], slots[in.FieldSlot][1]
	obj := b.regs(in.Args[0])
	if count == 0 {
		// Void field: the access reduces to a null check (§4.2).
		b.emit(&ir.Instr{Op: ir.OpNullCheck, Args: obj})
		if in.Op == ir.OpFieldLoad {
			b.regs(in.Dst[0])
		}
		return nil
	}
	if in.Op == ir.OpFieldLoad {
		dst := b.regs(in.Dst[0])
		for k := 0; k < count; k++ {
			b.emit(&ir.Instr{Op: ir.OpFieldLoad, Dst: []*ir.Reg{dst[k]}, Args: obj, FieldSlot: start + k})
		}
		return nil
	}
	vals := b.regs(in.Args[1])
	for k := 0; k < count; k++ {
		b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{obj[0], vals[k]}, FieldSlot: start + k})
	}
	return nil
}

// equality expands tuple equality into elementwise comparisons combined
// with boolean operators (§2.3's recursive equality).
func (b *bodyNormalizer) equality(in *ir.Instr) error {
	l := b.regs(in.Args[0])
	r := b.regs(in.Args[1])
	dst := b.regs(in.Dst[0])
	if len(l) != len(r) {
		return fmt.Errorf("norm: equality shape mismatch %d vs %d", len(l), len(r))
	}
	eqOp, combine := ir.OpEq, ir.OpBoolAnd
	if in.Op == ir.OpNe {
		eqOp, combine = ir.OpNe, ir.OpBoolOr
	}
	if len(l) == 0 {
		// void == void is always true; void != void always false.
		b.emit(&ir.Instr{Op: ir.OpConstBool, Dst: dst, IVal: boolVal(in.Op == ir.OpEq)})
		return nil
	}
	if len(l) == 1 {
		b.emit(&ir.Instr{Op: eqOp, Dst: dst, Args: []*ir.Reg{l[0], r[0]}})
		return nil
	}
	acc := b.nf.NewReg(b.n.tc.Bool(), "")
	b.emit(&ir.Instr{Op: eqOp, Dst: []*ir.Reg{acc}, Args: []*ir.Reg{l[0], r[0]}})
	for k := 1; k < len(l); k++ {
		t := b.nf.NewReg(b.n.tc.Bool(), "")
		b.emit(&ir.Instr{Op: eqOp, Dst: []*ir.Reg{t}, Args: []*ir.Reg{l[k], r[k]}})
		nacc := b.nf.NewReg(b.n.tc.Bool(), "")
		b.emit(&ir.Instr{Op: combine, Dst: []*ir.Reg{nacc}, Args: []*ir.Reg{acc, t}})
		acc = nacc
	}
	b.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, Args: []*ir.Reg{acc}})
	return nil
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cast expands a tuple cast elementwise (§2.3); scalar casts pass
// through. A cast whose shapes cannot match throws at runtime.
func (b *bodyNormalizer) cast(in *ir.Instr) error {
	src := b.regs(in.Args[0])
	dst := b.regs(in.Dst[0])
	return b.castParts(in.Type2, in.Type, src, dst)
}

func (b *bodyNormalizer) castParts(from, to types.Type, src, dst []*ir.Reg) error {
	ft, fok := from.(*types.Tuple)
	tt, tok := to.(*types.Tuple)
	switch {
	case fok && tok && len(ft.Elems) == len(tt.Elems):
		fo, to2 := 0, 0
		for k := range ft.Elems {
			fw := len(b.n.flatten(ft.Elems[k]))
			tw := len(b.n.flatten(tt.Elems[k]))
			if err := b.castParts(ft.Elems[k], tt.Elems[k], src[fo:fo+fw], dst[to2:to2+tw]); err != nil {
				return err
			}
			fo += fw
			to2 += tw
		}
		return nil
	case fok != tok || (fok && tok && len(ft.Elems) != len(tt.Elems)):
		// Statically impossible tuple-shape cast: always throws.
		b.emit(&ir.Instr{Op: ir.OpThrow, SVal: "!TypeCheckException"})
		return nil
	}
	// Scalar (possibly void) cast.
	if len(dst) == 0 && len(src) == 0 {
		return nil // void cast to void
	}
	if len(dst) != 1 || len(src) != 1 {
		b.emit(&ir.Instr{Op: ir.OpThrow, SVal: "!TypeCheckException"})
		return nil
	}
	b.emit(&ir.Instr{Op: ir.OpTypeCast, Dst: dst, Args: src, Type: to, Type2: from})
	return nil
}

// query expands a tuple query elementwise, combining with boolean and.
func (b *bodyNormalizer) query(in *ir.Instr) error {
	src := b.regs(in.Args[0])
	dst := b.regs(in.Dst[0])
	res, err := b.queryParts(in.Type2, in.Type, src)
	if err != nil {
		return err
	}
	b.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, Args: []*ir.Reg{res}})
	return nil
}

func (b *bodyNormalizer) queryParts(from, to types.Type, src []*ir.Reg) (*ir.Reg, error) {
	tc := b.n.tc
	constBool := func(v bool) *ir.Reg {
		r := b.nf.NewReg(tc.Bool(), "")
		b.emit(&ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{r}, IVal: boolVal(v)})
		return r
	}
	ft, fok := from.(*types.Tuple)
	tt, tok := to.(*types.Tuple)
	switch {
	case fok && tok && len(ft.Elems) == len(tt.Elems):
		var acc *ir.Reg
		fo := 0
		for k := range ft.Elems {
			fw := len(b.n.flatten(ft.Elems[k]))
			r, err := b.queryParts(ft.Elems[k], tt.Elems[k], src[fo:fo+fw])
			if err != nil {
				return nil, err
			}
			fo += fw
			if acc == nil {
				acc = r
			} else {
				nacc := b.nf.NewReg(tc.Bool(), "")
				b.emit(&ir.Instr{Op: ir.OpBoolAnd, Dst: []*ir.Reg{nacc}, Args: []*ir.Reg{acc, r}})
				acc = nacc
			}
		}
		if acc == nil {
			acc = constBool(true)
		}
		return acc, nil
	case fok != tok || (fok && tok && len(ft.Elems) != len(tt.Elems)):
		return constBool(false), nil
	}
	if len(src) == 0 {
		// void value queried against a scalar type.
		return constBool(to == tc.Void()), nil
	}
	r := b.nf.NewReg(tc.Bool(), "")
	b.emit(&ir.Instr{Op: ir.OpTypeQuery, Dst: []*ir.Reg{r}, Args: []*ir.Reg{src[0]}, Type: to, Type2: from})
	return r, nil
}

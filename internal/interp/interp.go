package interp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/ir"
	"repro/internal/src"
	"repro/internal/types"
)

// Frame is one Virgil-level call frame in a stack trace: the function
// name and the source position of the instruction that was executing
// when the trap fired (or, in caller frames, the call site).
type Frame struct {
	Func string
	Pos  src.Pos
}

func (f Frame) String() string {
	if f.Pos.IsValid() {
		return fmt.Sprintf("%s (%s)", f.Func, f.Pos)
	}
	return f.Func
}

// MaxTraceFrames bounds the frames captured in one trace; deeper stacks
// (a !StackOverflow has thousands of frames) record the overflow count
// in Elided instead.
const MaxTraceFrames = 64

// VirgilError is a runtime exception thrown by the executed program
// (e.g. !NullCheckException, !TypeCheckException). Trace holds the
// Virgil-level call stack at the throw point, innermost frame first;
// Elided counts frames dropped from an over-deep trace.
type VirgilError struct {
	Name   string
	Msg    string
	Trace  []Frame
	Elided int
}

func (e *VirgilError) Error() string {
	if e.Msg == "" {
		return e.Name
	}
	return e.Name + ": " + e.Msg
}

// TraceString renders the source-level stack trace, one frame per line,
// innermost first — the paper's §2 safety story made debuggable.
func (e *VirgilError) TraceString() string {
	var b strings.Builder
	for _, f := range e.Trace {
		fmt.Fprintf(&b, "\tat %s\n", f)
	}
	if e.Elided > 0 {
		fmt.Fprintf(&b, "\t... %d more frames elided ...\n", e.Elided)
	}
	return b.String()
}

// A ResourceError reports that execution exceeded a configured resource
// guard (step budget or wall-clock deadline) or was cancelled by the
// caller's context. It is not a Virgil-level exception — the program
// did not misbehave, the host bounded it — so it is a distinct type
// that drivers report as such.
type ResourceError struct {
	Kind string // "steps", "deadline", or "cancelled"
	Func string // function executing when the guard fired
	Msg  string
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("interp: %s in %s", e.Msg, e.Func)
}

// Stats reports the dynamic costs the paper's implementation section
// discusses.
type Stats struct {
	// Steps is the number of IR instructions executed (also the virtual
	// clock for clock.ticks).
	Steps int64
	// AdaptChecks counts dynamic arity-adaptation checks at virtual and
	// indirect call sites (§4.1); zero in fully normalized code.
	AdaptChecks int64
	// AdaptPacks counts adaptations that had to box or unbox a tuple.
	AdaptPacks int64
	// TypeEnvBinds counts runtime type-argument bindings performed
	// (§4.3's "invisible arguments"); zero in monomorphized code.
	TypeEnvBinds int64
	// TupleAllocs counts boxed tuple values allocated; zero after
	// normalization (§4.2's no-implicit-allocation guarantee).
	TupleAllocs int64
	// Calls counts function activations.
	Calls int64
	// HeapBytes is the cumulative modeled allocation cost (see heap.go);
	// it is metered against the MaxHeap budget and never decreases.
	HeapBytes int64
}

// DefaultMaxDepth bounds Virgil call depth. Each Virgil frame consumes
// a Go frame plus heap registers, so this must stay well under the Go
// runtime's fatal (unrecoverable) 1GB stack limit.
const DefaultMaxDepth = 10_000

// Options configure an interpreter.
type Options struct {
	Out      io.Writer       // System output; nil discards
	MaxSteps int64           // step budget; 0 means the default (1e9)
	MaxDepth int             // call-depth limit; 0 means DefaultMaxDepth
	MaxHeap  int64           // modeled heap budget; 0 means DefaultMaxHeap
	Timeout  time.Duration   // wall-clock budget; 0 means none
	Ctx      context.Context // cancellation; nil means never cancelled
	// Profile enables runtime profile collection. Only the bytecode
	// engine records profiles; the switch interpreter ignores this.
	Profile bool
}

// Interp executes one module.
type Interp struct {
	mod  *ir.Module
	tc   *types.Cache
	out  io.Writer
	opts Options

	globals    []Value
	classByDef map[*types.ClassDef]*ir.Class
	classByTyp map[*types.Class]*ir.Class

	stats    Stats
	maxSteps int64
	maxDepth int
	maxHeap  int64
	deadline time.Time
	done     <-chan struct{} // caller-context cancellation; nil means never
	frames   []Frame         // active Virgil call stack, outermost first

	// regPool recycles register frames across calls: without it a hot
	// interpreter spends most of its allocations on the per-call
	// register slice. Frames are cleared on release so values from a
	// finished call are neither observed by the next one nor retained
	// from collection.
	regPool [][]Value

	// constStrs caches the decoded element template of each
	// OpConstString instruction; objTemplates caches the field-default
	// template of each instantiated class. Both are copied into the
	// fresh (mutable) value on use, so caching is unobservable.
	constStrs    map[*ir.Instr][]Value
	objTemplates map[*types.Class][]Value
}

// constString returns the decoded byte-element template for a
// const-string instruction, computing it on first use.
func (i *Interp) constString(in *ir.Instr) []Value {
	if tmpl, ok := i.constStrs[in]; ok {
		return tmpl
	}
	tmpl := make([]Value, len(in.SVal))
	for k := 0; k < len(in.SVal); k++ {
		tmpl[k] = ByteVal(in.SVal[k])
	}
	i.constStrs[in] = tmpl
	return tmpl
}

// fieldTemplate returns the default field values of an instantiated
// class, computing BindParams + per-field defaults once per class
// instead of once per allocation. Default values are immutable
// (scalars, nulls, enum case 0, tuples of those), so sharing template
// entries across objects is unobservable.
func (i *Interp) fieldTemplate(cls *ir.Class, ct *types.Class) []Value {
	if tmpl, ok := i.objTemplates[ct]; ok {
		return tmpl
	}
	tmpl := make([]Value, len(cls.Fields))
	cenv := types.BindParams(cls.Def.TypeParams, ct.Args)
	for k, fd := range cls.Fields {
		tmpl[k] = DefaultValue(i.tc, i.tc.Subst(fd.Type, cenv))
	}
	i.objTemplates[ct] = tmpl
	return tmpl
}

// New creates an interpreter for mod.
func New(mod *ir.Module, opts Options) *Interp {
	i := &Interp{
		mod:        mod,
		tc:         mod.Types,
		out:        opts.Out,
		opts:       opts,
		globals:    make([]Value, len(mod.Globals)),
		classByDef: map[*types.ClassDef]*ir.Class{},
		classByTyp: map[*types.Class]*ir.Class{},
		maxSteps:   opts.MaxSteps,

		constStrs:    map[*ir.Instr][]Value{},
		objTemplates: map[*types.Class][]Value{},
	}
	if i.maxSteps == 0 {
		i.maxSteps = 1_000_000_000
	}
	i.maxDepth = opts.MaxDepth
	if i.maxDepth == 0 {
		i.maxDepth = DefaultMaxDepth
	}
	i.maxHeap = opts.MaxHeap
	if i.maxHeap == 0 {
		i.maxHeap = DefaultMaxHeap
	}
	if opts.Timeout > 0 {
		i.deadline = time.Now().Add(opts.Timeout)
	}
	if opts.Ctx != nil {
		i.done = opts.Ctx.Done()
	}
	for _, c := range mod.Classes {
		if mod.Monomorphic {
			i.classByTyp[c.Type] = c
		} else {
			i.classByDef[c.Def] = c
		}
	}
	for gi, g := range mod.Globals {
		i.globals[gi] = DefaultValue(i.tc, g.Type)
	}
	return i
}

// Stats returns execution statistics so far.
func (i *Interp) Stats() Stats { return i.stats }

// Run executes global initializers then main, returning main's result
// values.
func (i *Interp) Run() ([]Value, error) {
	if i.mod.Init != nil {
		if _, err := i.call(i.mod.Init, nil, nil); err != nil {
			return nil, err
		}
	}
	if i.mod.Main == nil {
		return nil, fmt.Errorf("interp: module has no main function")
	}
	if len(i.mod.Main.Params) != 0 {
		return nil, fmt.Errorf("interp: main must take no parameters")
	}
	return i.call(i.mod.Main, nil, nil)
}

// CallFunc invokes a named function with the given values (used by
// tests and benchmarks).
func (i *Interp) CallFunc(name string, args ...Value) ([]Value, error) {
	for _, f := range i.mod.Funcs {
		if f.Name == name {
			return i.call(f, args, nil)
		}
	}
	return nil, fmt.Errorf("interp: no function %q", name)
}

// env is a runtime type-argument environment.
type env = map[*types.TypeParamDef]types.Type

// subst substitutes the frame's type environment into t.
func (i *Interp) subst(t types.Type, e env) types.Type {
	if t == nil || len(e) == 0 {
		return t
	}
	return i.tc.Subst(t, e)
}

func (i *Interp) substAll(ts []types.Type, e env) []types.Type {
	if len(ts) == 0 {
		return nil
	}
	out := make([]types.Type, len(ts))
	for k, t := range ts {
		out[k] = i.subst(t, e)
	}
	return out
}

// bindEnv builds the callee's type environment from its type parameters
// and closed type arguments.
func (i *Interp) bindEnv(f *ir.Func, targs []types.Type) env {
	if len(f.TypeParams) == 0 {
		return nil
	}
	i.stats.TypeEnvBinds++
	e := make(env, len(f.TypeParams))
	for k, p := range f.TypeParams {
		if k < len(targs) {
			e[p] = targs[k]
		}
	}
	return e
}

// adapt performs the paper's dynamic calling-convention check (§4.1)
// via the shared kernel.
func (i *Interp) adapt(provided []Value, params []*ir.Reg) ([]Value, error) {
	return Adapt(&i.stats, provided, params)
}

// traceSnapshot captures the current Virgil call stack, innermost frame
// first, bounded at MaxTraceFrames.
func (i *Interp) traceSnapshot() ([]Frame, int) {
	n := len(i.frames)
	keep := n
	if keep > MaxTraceFrames {
		keep = MaxTraceFrames
	}
	out := make([]Frame, keep)
	for k := 0; k < keep; k++ {
		out[k] = i.frames[n-1-k]
	}
	return out, n - keep
}

// charge meters one allocation of n modeled bytes against the heap
// budget, returning a !HeapExhausted trap once the budget is spent.
// The trace is stamped by call() as the trap unwinds, like every
// other bare trap.
func (i *Interp) charge(n int64) *VirgilError {
	if ChargeHeap(&i.stats, i.maxHeap, n) {
		return HeapTrap(n, i.maxHeap)
	}
	return nil
}

// trap builds a Virgil exception carrying the current stack trace.
func (i *Interp) trap(name, msg string) *VirgilError {
	tr, elided := i.traceSnapshot()
	return &VirgilError{Name: name, Msg: msg, Trace: tr, Elided: elided}
}

// call pushes a Virgil frame for f, executes it, and — if a trap is
// unwinding and has no trace yet — stamps the trace at this, the
// deepest point that sees the error. Caller frames above attach
// nothing, so the snapshot reflects the throw point.
func (i *Interp) call(f *ir.Func, args []Value, targs []types.Type) ([]Value, error) {
	i.stats.Calls++
	if len(i.frames) >= i.maxDepth {
		return nil, i.trap("!StackOverflow", fmt.Sprintf("call depth limit %d reached calling %s", i.maxDepth, f.Name))
	}
	fr := Frame{Func: f.Name}
	// Seed the frame with the function-entry position so traps that
	// fire before the first instruction (arity adaptation) still point
	// into the source.
	if len(f.Blocks) > 0 && len(f.Blocks[0].Instrs) > 0 {
		fr.Pos = f.Blocks[0].Instrs[0].Pos
	}
	i.frames = append(i.frames, fr)
	res, err := i.exec(f, args, targs)
	if ve, ok := err.(*VirgilError); ok && ve.Trace == nil {
		ve.Trace, ve.Elided = i.traceSnapshot()
	}
	i.frames = i.frames[:len(i.frames)-1]
	return res, err
}

// getRegs takes a register frame of length n from the pool, or
// allocates one. The pool never grows past the call depth, because
// frames are only released when a call returns.
func (i *Interp) getRegs(n int) []Value {
	if k := len(i.regPool) - 1; k >= 0 {
		regs := i.regPool[k]
		i.regPool[k] = nil
		i.regPool = i.regPool[:k]
		if cap(regs) >= n {
			return regs[:n]
		}
	}
	return make([]Value, n)
}

// putRegs clears a frame and returns it to the pool.
func (i *Interp) putRegs(regs []Value) {
	clear(regs)
	i.regPool = append(i.regPool, regs[:0])
}

// exec runs f's body. It must only be called by call, which maintains
// the frame stack around it.
func (i *Interp) exec(f *ir.Func, args []Value, targs []types.Type) ([]Value, error) {
	fi := len(i.frames) - 1
	e := i.bindEnv(f, targs)
	regs := i.getRegs(f.NumRegs())
	defer i.putRegs(regs)
	if len(args) != len(f.Params) {
		return nil, &VirgilError{Name: "!CallArityException", Msg: fmt.Sprintf("%s: got %d args, want %d", f.Name, len(args), len(f.Params))}
	}
	for k, p := range f.Params {
		regs[p.ID] = args[k]
	}
	blk := f.Blocks[0]
	pc := 0
	get := func(r *ir.Reg) Value { return regs[r.ID] }
	for {
		if pc >= len(blk.Instrs) {
			return nil, fmt.Errorf("interp: %s: fell off block b%d", f.Name, blk.ID)
		}
		in := blk.Instrs[pc]
		i.frames[fi].Pos = in.Pos
		i.stats.Steps++
		if i.stats.Steps > i.maxSteps {
			return nil, &ResourceError{Kind: "steps", Func: f.Name, Msg: fmt.Sprintf("step limit exceeded (budget %d)", i.maxSteps)}
		}
		if i.stats.Steps&0xFFF == 0 {
			if !i.deadline.IsZero() && time.Now().After(i.deadline) {
				return nil, &ResourceError{Kind: "deadline", Func: f.Name, Msg: "wall-clock deadline exceeded"}
			}
			if i.done != nil {
				select {
				case <-i.done:
					return nil, &ResourceError{Kind: "cancelled", Func: f.Name, Msg: "execution cancelled"}
				default:
				}
			}
		}
		switch in.Op {
		case ir.OpNop:
		case ir.OpConstInt:
			regs[in.Dst[0].ID] = IntVal(int32(in.IVal))
		case ir.OpConstByte:
			regs[in.Dst[0].ID] = ByteVal(byte(in.IVal))
		case ir.OpConstBool:
			regs[in.Dst[0].ID] = BoolVal(in.IVal != 0)
		case ir.OpConstVoid:
			regs[in.Dst[0].ID] = VoidVal{}
		case ir.OpConstNull:
			// The "null" of a type: the default value. Lowering emits
			// this for locals of (possibly open) type-parameter type, so
			// the runtime type environment decides the representation.
			regs[in.Dst[0].ID] = DefaultValue(i.tc, i.subst(in.Type, e))
		case ir.OpConstString:
			// Arrays are mutable, so each execution gets a fresh element
			// slice — but decoding the string constant happens once per
			// instruction, not once per execution.
			tmpl := i.constString(in)
			if ve := i.charge(StringBytes(len(tmpl))); ve != nil {
				return nil, ve
			}
			elems := make([]Value, len(tmpl))
			copy(elems, tmpl)
			regs[in.Dst[0].ID] = &ArrVal{Elem: i.tc.Byte(), Elems: elems}
		case ir.OpMove:
			regs[in.Dst[0].ID] = get(in.Args[0])

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
			ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor:
			a, ok1 := get(in.Args[0]).(IntVal)
			b, ok2 := get(in.Args[1]).(IntVal)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("interp: %s: non-int operands to %s", f.Name, in.Op)
			}
			v, err := IntArith(in.Op, int32(a), int32(b))
			if err != nil {
				return nil, err
			}
			regs[in.Dst[0].ID] = IntVal(v)
		case ir.OpNeg:
			a, ok := get(in.Args[0]).(IntVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: non-int operand to %s", f.Name, in.Op)
			}
			regs[in.Dst[0].ID] = IntVal(-int32(a))
		case ir.OpNot:
			a, ok := get(in.Args[0]).(BoolVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: non-bool operand to %s", f.Name, in.Op)
			}
			regs[in.Dst[0].ID] = BoolVal(!a)
		case ir.OpBoolAnd, ir.OpBoolOr:
			a, ok1 := get(in.Args[0]).(BoolVal)
			b, ok2 := get(in.Args[1]).(BoolVal)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("interp: %s: non-bool operands to %s", f.Name, in.Op)
			}
			if in.Op == ir.OpBoolAnd {
				regs[in.Dst[0].ID] = a && b
			} else {
				regs[in.Dst[0].ID] = a || b
			}
		case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			regs[in.Dst[0].ID] = BoolVal(CompareVals(in.Op, get(in.Args[0]), get(in.Args[1])))
		case ir.OpEq:
			regs[in.Dst[0].ID] = BoolVal(ValueEq(get(in.Args[0]), get(in.Args[1])))
		case ir.OpNe:
			regs[in.Dst[0].ID] = BoolVal(!ValueEq(get(in.Args[0]), get(in.Args[1])))

		case ir.OpMakeTuple:
			// Allocations proven non-escaping skip the modeled heap
			// charge: the value is frame-local, so only the HeapBytes
			// meter could tell the difference.
			if !in.StackAlloc {
				if ve := i.charge(TupleBytes(len(in.Args))); ve != nil {
					return nil, ve
				}
			}
			vs := make(TupleVal, len(in.Args))
			for k, a := range in.Args {
				vs[k] = get(a)
			}
			i.stats.TupleAllocs++
			regs[in.Dst[0].ID] = vs
		case ir.OpTupleGet:
			tv, ok := get(in.Args[0]).(TupleVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: tuple.get of non-tuple", f.Name)
			}
			regs[in.Dst[0].ID] = tv[in.FieldSlot]

		case ir.OpNewObject:
			ct := i.subst(in.Type, e).(*types.Class)
			cls, err := i.classFor(ct)
			if err != nil {
				return nil, err
			}
			if !in.StackAlloc {
				if ve := i.charge(ObjectBytes(len(cls.Fields))); ve != nil {
					return nil, ve
				}
			}
			tmpl := i.fieldTemplate(cls, ct)
			fields := make([]Value, len(tmpl))
			copy(fields, tmpl)
			regs[in.Dst[0].ID] = &ObjVal{Class: cls, Args: ct.Args, Fields: fields}
		case ir.OpFieldLoad:
			obj, err := i.objArg(f, in, get(in.Args[0]))
			if err != nil {
				return nil, err
			}
			regs[in.Dst[0].ID] = obj.Fields[in.FieldSlot]
		case ir.OpFieldStore:
			obj, err := i.objArg(f, in, get(in.Args[0]))
			if err != nil {
				return nil, err
			}
			obj.Fields[in.FieldSlot] = get(in.Args[1])
		case ir.OpNullCheck:
			if _, isNull := get(in.Args[0]).(NullVal); isNull {
				return nil, &VirgilError{Name: "!NullCheckException"}
			}

		case ir.OpArrayNew:
			at := i.subst(in.Type, e).(*types.Array)
			n := int(get(in.Args[0]).(IntVal))
			if n < 0 {
				return nil, &VirgilError{Name: "!LengthCheckException"}
			}
			if ve := i.charge(ArrayBytes(i.tc, at.Elem, int64(n))); ve != nil {
				return nil, ve
			}
			av := &ArrVal{Elem: at.Elem, Len: n}
			if at.Elem != i.tc.Void() {
				av.Elems = make([]Value, n)
				d := DefaultValue(i.tc, at.Elem)
				for k := range av.Elems {
					av.Elems[k] = d
				}
			}
			regs[in.Dst[0].ID] = av
		case ir.OpArrayLoad:
			av, idx, err := i.arrayArgs(get(in.Args[0]), get(in.Args[1]))
			if err != nil {
				return nil, err
			}
			if len(in.Dst) > 0 { // void-array accesses are check-only
				if av.Elems == nil {
					regs[in.Dst[0].ID] = VoidVal{}
				} else {
					regs[in.Dst[0].ID] = av.Elems[idx]
				}
			}
		case ir.OpArrayStore:
			av, idx, err := i.arrayArgs(get(in.Args[0]), get(in.Args[1]))
			if err != nil {
				return nil, err
			}
			if av.Elems != nil {
				av.Elems[idx] = get(in.Args[2])
			}
		case ir.OpArrayLen:
			av, ok := get(in.Args[0]).(*ArrVal)
			if !ok {
				return nil, &VirgilError{Name: "!NullCheckException"}
			}
			regs[in.Dst[0].ID] = IntVal(int32(av.Length()))

		case ir.OpGlobalLoad:
			regs[in.Dst[0].ID] = i.globals[in.Global.Index]
		case ir.OpGlobalStore:
			i.globals[in.Global.Index] = get(in.Args[0])

		case ir.OpCallStatic:
			// The argument slice is dead once the callee's exec copies
			// it into registers, so it can come from the frame pool.
			args := i.getRegs(len(in.Args))
			for k, a := range in.Args {
				args[k] = get(a)
			}
			res, err := i.call(in.Fn, args, i.substAll(in.TypeArgs, e))
			i.putRegs(args)
			if err != nil {
				return nil, err
			}
			storeResults(regs, in.Dst, res)
		case ir.OpCallVirtual:
			recv, ok := get(in.Args[0]).(*ObjVal)
			if !ok {
				return nil, &VirgilError{Name: "!NullCheckException"}
			}
			slot := in.FieldSlot
			if slot >= len(recv.Class.Vtable) || recv.Class.Vtable[slot] == nil {
				return nil, fmt.Errorf("interp: %s: bad vtable slot %d on %s", f.Name, slot, recv.Class.Name)
			}
			target := recv.Class.Vtable[slot]
			provided := make([]Value, len(in.Args)-1)
			for k := 1; k < len(in.Args); k++ {
				provided[k-1] = get(in.Args[k])
			}
			adapted, err := i.adapt(provided, target.Params[1:])
			if err != nil {
				return nil, err
			}
			targsAll := i.virtualTypeArgs(target, recv, i.substAll(in.TypeArgs, e))
			res, err := i.call(target, append([]Value{recv}, adapted...), targsAll)
			if err != nil {
				return nil, err
			}
			storeResults(regs, in.Dst, res)
		case ir.OpCallIndirect:
			fv, ok := get(in.Args[0]).(*FuncVal)
			if !ok {
				return nil, &VirgilError{Name: "!NullCheckException"}
			}
			provided := make([]Value, len(in.Args)-1)
			for k := 1; k < len(in.Args); k++ {
				provided[k-1] = get(in.Args[k])
			}
			res, err := i.invokeClosure(fv, provided)
			if err != nil {
				return nil, err
			}
			storeResults(regs, in.Dst, res)
		case ir.OpCallBuiltin:
			args := i.getRegs(len(in.Args))
			for k, a := range in.Args {
				args[k] = get(a)
			}
			res, err := CallBuiltin(i.out, in.SVal, args, i.stats.Steps)
			i.putRegs(args)
			if err != nil {
				return nil, err
			}
			if len(in.Dst) > 0 {
				regs[in.Dst[0].ID] = res
			}

		case ir.OpMakeClosure:
			if !in.StackAlloc {
				if ve := i.charge(ClosureBytes); ve != nil {
					return nil, ve
				}
			}
			targsClosed := i.substAll(in.TypeArgs, e)
			fv := &FuncVal{Fn: in.Fn, TypeArgs: targsClosed}
			if ft, ok := i.subst(in.Type2, e).(*types.Func); ok {
				fv.Type = ft // the recorded source-level closure type
			} else {
				fv.Type = ClosureType(i.tc, in.Fn, nil, targsClosed)
			}
			regs[in.Dst[0].ID] = fv
		case ir.OpMakeBound:
			recv, ok := get(in.Args[0]).(*ObjVal)
			if !ok {
				return nil, &VirgilError{Name: "!NullCheckException"}
			}
			if !in.StackAlloc {
				if ve := i.charge(ClosureBytes); ve != nil {
					return nil, ve
				}
			}
			target := recv.Class.Vtable[in.FieldSlot]
			targsClosed := i.substAll(in.TypeArgs, e)
			fv := &FuncVal{Fn: target, Recv: recv, HasRecv: true, TypeArgs: targsClosed}
			if ft, ok := i.subst(in.Type2, e).(*types.Func); ok {
				fv.Type = ft
			} else {
				fv.Type = ClosureType(i.tc, target, recv, targsClosed)
			}
			regs[in.Dst[0].ID] = fv

		case ir.OpConstEnum:
			et := i.subst(in.Type, e).(*types.Enum)
			regs[in.Dst[0].ID] = EnumVal{Def: et.Def, Tag: int(in.IVal)}
		case ir.OpEnumTag:
			ev, ok := get(in.Args[0]).(EnumVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: enum.tag of non-enum", f.Name)
			}
			regs[in.Dst[0].ID] = IntVal(int32(ev.Tag))
		case ir.OpEnumName:
			ev, ok := get(in.Args[0]).(EnumVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: enum.name of non-enum", f.Name)
			}
			name := "?"
			if ev.Tag >= 0 && ev.Tag < len(ev.Def.Cases) {
				name = ev.Def.Cases[ev.Tag]
			}
			if ve := i.charge(StringBytes(len(name))); ve != nil {
				return nil, ve
			}
			elems := make([]Value, len(name))
			for k := 0; k < len(name); k++ {
				elems[k] = ByteVal(name[k])
			}
			regs[in.Dst[0].ID] = &ArrVal{Elem: i.tc.Byte(), Elems: elems}

		case ir.OpTypeCast:
			to := i.subst(in.Type, e)
			v, err := EvalCast(i.tc, get(in.Args[0]), to)
			if err != nil {
				return nil, err
			}
			regs[in.Dst[0].ID] = v
		case ir.OpTypeQuery:
			to := i.subst(in.Type, e)
			regs[in.Dst[0].ID] = BoolVal(EvalQuery(i.tc, get(in.Args[0]), to))

		case ir.OpRet:
			out := make([]Value, len(in.Args))
			for k, a := range in.Args {
				out[k] = get(a)
			}
			return out, nil
		case ir.OpJump:
			blk = in.Blocks[0]
			pc = 0
			continue
		case ir.OpBranch:
			c, ok := get(in.Args[0]).(BoolVal)
			if !ok {
				return nil, fmt.Errorf("interp: %s: branch on non-bool", f.Name)
			}
			if c {
				blk = in.Blocks[0]
			} else {
				blk = in.Blocks[1]
			}
			pc = 0
			continue
		case ir.OpThrow:
			return nil, &VirgilError{Name: in.SVal}
		default:
			return nil, fmt.Errorf("interp: %s: unhandled op %s", f.Name, in.Op)
		}
		pc++
	}
}

// storeResults writes call results into destination registers. A callee
// may return one void value for a caller expecting none and vice versa.
func storeResults(regs []Value, dst []*ir.Reg, res []Value) {
	for k, d := range dst {
		if k < len(res) {
			regs[d.ID] = res[k]
		} else {
			regs[d.ID] = VoidVal{}
		}
	}
}

// invokeClosure calls a closure value with dynamically adapted
// arguments (§4.1).
func (i *Interp) invokeClosure(fv *FuncVal, provided []Value) ([]Value, error) {
	params := fv.Fn.Params
	var callArgs []Value
	if fv.HasRecv {
		adapted, err := i.adapt(provided, params[1:])
		if err != nil {
			return nil, err
		}
		callArgs = append([]Value{fv.Recv}, adapted...)
	} else {
		adapted, err := i.adapt(provided, params)
		if err != nil {
			return nil, err
		}
		callArgs = adapted
	}
	targs := fv.TypeArgs
	if fv.HasRecv && fv.Fn.NumClassParams > 0 {
		recv := fv.Recv.(*ObjVal)
		targs = append(ClassArgsFromRecv(i.tc, fv.Fn, recv), fv.TypeArgs...)
	}
	return i.call(fv.Fn, callArgs, targs)
}

// virtualTypeArgs combines receiver-derived class arguments with
// call-site method arguments for a virtual call target.
func (i *Interp) virtualTypeArgs(target *ir.Func, recv *ObjVal, margs []types.Type) []types.Type {
	if len(target.TypeParams) == 0 {
		return nil
	}
	cargs := ClassArgsFromRecv(i.tc, target, recv)
	return append(cargs, margs...)
}

// classFor resolves a closed class type to its IR class.
func (i *Interp) classFor(ct *types.Class) (*ir.Class, error) {
	if i.mod.Monomorphic {
		if c, ok := i.classByTyp[ct]; ok {
			return c, nil
		}
		return nil, fmt.Errorf("interp: no specialized class for %s", ct)
	}
	if c, ok := i.classByDef[ct.Def]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("interp: unknown class %s", ct)
}

func (i *Interp) objArg(f *ir.Func, in *ir.Instr, v Value) (*ObjVal, error) {
	obj, ok := v.(*ObjVal)
	if !ok {
		return nil, &VirgilError{Name: "!NullCheckException"}
	}
	return obj, nil
}

func (i *Interp) arrayArgs(av, iv Value) (*ArrVal, int, error) {
	arr, ok := av.(*ArrVal)
	if !ok {
		return nil, 0, &VirgilError{Name: "!NullCheckException"}
	}
	idx, ok := iv.(IntVal)
	if !ok {
		return nil, 0, fmt.Errorf("interp: non-int array index")
	}
	if int(idx) < 0 || int(idx) >= arr.Length() {
		return nil, 0, &VirgilError{Name: "!BoundsCheckException"}
	}
	return arr, int(idx), nil
}

func first(args []Value) Value {
	if len(args) == 0 {
		return VoidVal{}
	}
	return args[0]
}

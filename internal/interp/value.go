// Package interp executes IR modules. One engine serves two roles:
//
//   - Reference mode runs the polymorphic IR directly, with boxed tuple
//     values, runtime type-argument environments ("invisible arguments",
//     §4.3), and dynamic arity-adaptation checks at virtual and indirect
//     call sites (§4.1) — the paper's interpreter.
//   - Compiled mode runs the monomorphized, normalized, optimized IR,
//     where none of those mechanisms trigger; the relative cost of the
//     two modes is what experiments E1-E3 measure.
package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// Value is a runtime value.
type Value interface{ valueKind() string }

// IntVal is a 32-bit signed integer value.
type IntVal int32

func (IntVal) valueKind() string { return "int" }

// ByteVal is an unsigned 8-bit value.
type ByteVal byte

func (ByteVal) valueKind() string { return "byte" }

// BoolVal is a boolean value.
type BoolVal bool

func (BoolVal) valueKind() string { return "bool" }

// VoidVal is the single void value ().
type VoidVal struct{}

func (VoidVal) valueKind() string { return "void" }

// NullVal is the null reference.
type NullVal struct{}

func (NullVal) valueKind() string { return "null" }

// TupleVal is a boxed tuple (reference mode only; normalization
// eliminates every one of these, §4.2).
type TupleVal []Value

func (TupleVal) valueKind() string { return "tuple" }

// ObjVal is a class instance. Args is the closed instantiation of the
// class's type parameters (empty after monomorphization, where Class
// itself is the specialized class).
type ObjVal struct {
	Class  *ir.Class
	Args   []types.Type
	Fields []Value
}

func (*ObjVal) valueKind() string { return "object" }

// ArrVal is an array. For Array<void>, Elems is nil and only Len is
// meaningful (§4.2: a length-only array). After normalization an
// Array<(A,B)> has been split into parallel arrays, so Elems always
// holds scalars in compiled mode.
type ArrVal struct {
	Elem  types.Type
	Elems []Value
	Len   int
}

func (*ArrVal) valueKind() string { return "array" }

// Length returns the array length.
func (a *ArrVal) Length() int {
	if a.Elems == nil {
		return a.Len
	}
	return len(a.Elems)
}

// EnumVal is a value of an enumerated type (§6.1).
type EnumVal struct {
	Def *types.EnumDef
	Tag int
}

func (EnumVal) valueKind() string { return "enum" }

// FuncVal is a closure: a function, an optional bound receiver, closed
// type arguments, and the closed dynamic function type.
type FuncVal struct {
	Fn       *ir.Func
	Recv     Value
	HasRecv  bool
	TypeArgs []types.Type
	Type     *types.Func
}

func (*FuncVal) valueKind() string { return "func" }

// String renders a value for test output and System printing.
func ValueString(v Value) string {
	switch v := v.(type) {
	case IntVal:
		return fmt.Sprintf("%d", int32(v))
	case ByteVal:
		return fmt.Sprintf("'%c'", byte(v))
	case BoolVal:
		return fmt.Sprintf("%v", bool(v))
	case VoidVal:
		return "()"
	case NullVal:
		return "null"
	case TupleVal:
		s := "("
		for i, e := range v {
			if i > 0 {
				s += ", "
			}
			s += ValueString(e)
		}
		return s + ")"
	case *ObjVal:
		return v.Class.Name
	case *ArrVal:
		return fmt.Sprintf("Array(len=%d)", v.Length())
	case *FuncVal:
		return "func " + v.Fn.Name
	case EnumVal:
		if v.Tag >= 0 && v.Tag < len(v.Def.Cases) {
			return v.Def.Name + "." + v.Def.Cases[v.Tag]
		}
		return v.Def.Name + ".?"
	}
	return "?"
}

// ValueEq implements the universal == operator: primitive value
// equality, recursive tuple equality (§2.3), reference identity for
// objects and arrays, and function+receiver+type-arguments identity for
// closures.
func ValueEq(a, b Value) bool {
	switch av := a.(type) {
	case IntVal:
		bv, ok := b.(IntVal)
		return ok && av == bv
	case ByteVal:
		bv, ok := b.(ByteVal)
		return ok && av == bv
	case BoolVal:
		bv, ok := b.(BoolVal)
		return ok && av == bv
	case VoidVal:
		_, ok := b.(VoidVal)
		return ok
	case NullVal:
		_, ok := b.(NullVal)
		return ok
	case TupleVal:
		bv, ok := b.(TupleVal)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !ValueEq(av[i], bv[i]) {
				return false
			}
		}
		return true
	case EnumVal:
		bv, ok := b.(EnumVal)
		return ok && av.Def == bv.Def && av.Tag == bv.Tag
	case *ObjVal:
		bv, ok := b.(*ObjVal)
		return ok && av == bv
	case *ArrVal:
		bv, ok := b.(*ArrVal)
		return ok && av == bv
	case *FuncVal:
		bv, ok := b.(*FuncVal)
		if !ok || av.Fn != bv.Fn || av.HasRecv != bv.HasRecv {
			return false
		}
		if av.HasRecv && !ValueEq(av.Recv, bv.Recv) {
			return false
		}
		if len(av.TypeArgs) != len(bv.TypeArgs) {
			return false
		}
		for i := range av.TypeArgs {
			if av.TypeArgs[i] != bv.TypeArgs[i] {
				return false
			}
		}
		return true
	}
	return false
}

// DynTypeOf computes the dynamic type of a value for reified casts and
// queries (§2.2, d13-d14).
func DynTypeOf(tc *types.Cache, v Value) types.Type {
	switch v := v.(type) {
	case IntVal:
		return tc.Int()
	case ByteVal:
		return tc.Byte()
	case BoolVal:
		return tc.Bool()
	case VoidVal:
		return tc.Void()
	case NullVal:
		return tc.Null()
	case TupleVal:
		elems := make([]types.Type, len(v))
		for i, e := range v {
			elems[i] = DynTypeOf(tc, e)
		}
		return tc.TupleOf(elems)
	case *ObjVal:
		if len(v.Class.TypeParams) > 0 && len(v.Args) > 0 {
			return tc.ClassOf(v.Class.Def, v.Args)
		}
		return tc.ClassOf(v.Class.Def, v.Args)
	case *ArrVal:
		return tc.ArrayOf(v.Elem)
	case *FuncVal:
		return v.Type
	case EnumVal:
		return tc.EnumOf(v.Def)
	}
	return tc.Void()
}

// DefaultValue builds the default value of a closed type.
func DefaultValue(tc *types.Cache, t types.Type) Value {
	switch t := t.(type) {
	case *types.Prim:
		switch t.Kind {
		case types.KindInt:
			return IntVal(0)
		case types.KindByte:
			return ByteVal(0)
		case types.KindBool:
			return BoolVal(false)
		case types.KindNull:
			return NullVal{}
		default:
			return VoidVal{}
		}
	case *types.Enum:
		return EnumVal{Def: t.Def} // the first case
	case *types.Tuple:
		vs := make(TupleVal, len(t.Elems))
		for i, e := range t.Elems {
			vs[i] = DefaultValue(tc, e)
		}
		return vs
	default:
		return NullVal{}
	}
}

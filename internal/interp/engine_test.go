package interp

import (
	"strings"
	"testing"
)

func TestSystemError(t *testing.T) {
	runRefErr(t, `
def main() { System.error("boom"); }
`, "!SystemError: boom")
}

func TestStepLimit(t *testing.T) {
	mod := compileRef(t, `
def main() { while (true) { } }
`)
	it := New(mod, Options{MaxSteps: 1000})
	_, err := it.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step limit error, got %v", err)
	}
}

func TestCallFunc(t *testing.T) {
	mod := compileRef(t, `
def double(x: int) -> int { return x * 2; }
def main() { }
`)
	it := New(mod, Options{})
	res, err := it.CallFunc("double", IntVal(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != IntVal(42) {
		t.Fatalf("got %v", res)
	}
	if _, err := it.CallFunc("nope"); err == nil {
		t.Error("unknown function should error")
	}
}

func TestMainRequired(t *testing.T) {
	mod := compileRef(t, `def f() { }`)
	it := New(mod, Options{})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Fatalf("want no-main error, got %v", err)
	}
}

func TestNegativeArrayLength(t *testing.T) {
	runRefErr(t, `
def main() { var a = Array<int>.new(0 - 1); }
`, "!LengthCheckException")
}

func TestAbstractMethodTraps(t *testing.T) {
	runRefErr(t, `
class A { def m(); }
def main() { A.new().m(); }
`, "!UnimplementedException")
}

func TestClosureEqualitySemantics(t *testing.T) {
	// b-series semantics: a.m == a.m (same receiver, same method), but
	// closures over different receivers differ.
	got := runRef(t, `
class A { def m() -> int { return 1; } }
def main() {
	var a = A.new();
	var b = A.new();
	System.putb(a.m == a.m);
	System.putb(a.m == b.m);
	System.putb(A.m == A.m);
	System.putb(A.new == A.new);
	System.putb(int.+ == int.+);
	System.putb(int.+ == int.-);
}
`)
	if got != "truefalsetruetruetruefalse" {
		t.Fatalf("got %q", got)
	}
}

func TestGlobalInitOrder(t *testing.T) {
	// Globals initialize in declaration order; later inits see earlier
	// values.
	got := runRef(t, `
var a = 10;
var b = a * 2;
var c = b + a;
def main() { System.puti(c); }
`)
	if got != "30" {
		t.Fatalf("got %q", got)
	}
}

func TestRecursionDepth(t *testing.T) {
	got := runRef(t, `
def sum(n: int) -> int {
	if (n == 0) return 0;
	return n + sum(n - 1);
}
def main() { System.puti(sum(1000)); }
`)
	if got != "500500" {
		t.Fatalf("got %q", got)
	}
}

func TestIntOverflowWraps(t *testing.T) {
	got := runRef(t, `
def main() {
	var x = 2147483647;
	System.puti(x + 1);
}
`)
	if got != "-2147483648" {
		t.Fatalf("got %q", got)
	}
}

func TestNullClosureCall(t *testing.T) {
	runRefErr(t, `
def main() {
	var f: int -> int;
	f(1);
}
`, "!NullCheckException")
}

func TestNullBoundMethod(t *testing.T) {
	runRefErr(t, `
class A { def m() { } }
def main() {
	var a: A;
	var f = a.m;
}
`, "!NullCheckException")
}

func TestCastNullIntoRef(t *testing.T) {
	got := runRef(t, `
class A { }
class B extends A { }
def main() {
	var a: A;
	var b = B.!(a);   // casting null to a reference type succeeds
	System.putb(b == null);
	System.putb(B.?(a)); // but a query on null is false
}
`)
	if got != "truefalse" {
		t.Fatalf("got %q", got)
	}
}

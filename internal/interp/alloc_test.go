package interp

import "testing"

// TestNewObjectAllocsPerOp pins the cost of OpNewObject: with the
// per-class field-default template computed once and copied per
// allocation, creating an object must cost a small constant number of
// Go allocations (the ObjVal, its field slice, and loop-carried value
// boxing) — not one allocation per field per object, which is what
// recomputing DefaultValue for every field on every OpNewObject costs.
func TestNewObjectAllocsPerOp(t *testing.T) {
	mod := compileRef(t, `
class P {
	var a: int; var b: int; var c: int; var d: int;
	var e: bool; var f: byte; var g: Array<byte>; var h: P;
}
def churn(n: int) -> int {
	var i = 0;
	while (i < n) { var p = P.new(); i = i + 1; }
	return i;
}
def main() { }
`)
	const inner = 1000
	it := New(mod, Options{MaxSteps: 1 << 30})
	// Warm the template cache and the register pools before measuring.
	if _, err := it.CallFunc("churn", IntVal(inner)); err != nil {
		t.Fatal(err)
	}
	perCall := testing.AllocsPerRun(10, func() {
		if _, err := it.CallFunc("churn", IntVal(inner)); err != nil {
			t.Fatal(err)
		}
	})
	perOp := perCall / inner
	// 8 fields: an untemplated implementation pays ≥8 allocations per
	// object just materializing defaults. The templated path pays ~3
	// (object header, field-slice copy, interface boxing in the loop).
	if perOp > 5 {
		t.Errorf("OpNewObject costs %.2f Go allocs per object (%.0f per %d-object call); template path should stay ≤5", perOp, perCall, inner)
	}
}

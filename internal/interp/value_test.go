package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/types"
)

func TestValueEqPrimitives(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(1), true},
		{IntVal(1), IntVal(2), false},
		{ByteVal('a'), ByteVal('a'), true},
		{BoolVal(true), BoolVal(true), true},
		{VoidVal{}, VoidVal{}, true},
		{NullVal{}, NullVal{}, true},
		{IntVal(1), BoolVal(true), false},
		{IntVal(0), NullVal{}, false},
	}
	for _, c := range cases {
		if got := ValueEq(c.a, c.b); got != c.want {
			t.Errorf("ValueEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqTuplesRecursive(t *testing.T) {
	a := TupleVal{IntVal(1), TupleVal{BoolVal(true), ByteVal('x')}}
	b := TupleVal{IntVal(1), TupleVal{BoolVal(true), ByteVal('x')}}
	c := TupleVal{IntVal(1), TupleVal{BoolVal(false), ByteVal('x')}}
	if !ValueEq(a, b) {
		t.Error("structurally equal tuples must be ==, 'no matter when or where' (§2.3)")
	}
	if ValueEq(a, c) {
		t.Error("different tuples must not be ==")
	}
	if ValueEq(a, TupleVal{IntVal(1)}) {
		t.Error("different arity tuples must not be ==")
	}
}

func TestValueEqReferences(t *testing.T) {
	cls := &ir.Class{Name: "A"}
	o1 := &ObjVal{Class: cls, Fields: []Value{IntVal(1)}}
	o2 := &ObjVal{Class: cls, Fields: []Value{IntVal(1)}}
	if !ValueEq(o1, o1) || ValueEq(o1, o2) {
		t.Error("object equality is identity, not structure")
	}
	a1 := &ArrVal{Elems: []Value{IntVal(1)}}
	a2 := &ArrVal{Elems: []Value{IntVal(1)}}
	if !ValueEq(a1, a1) || ValueEq(a1, a2) {
		t.Error("array equality is identity")
	}
}

func TestValueEqClosures(t *testing.T) {
	f := &ir.Func{Name: "f"}
	g := &ir.Func{Name: "g"}
	recv := &ObjVal{Class: &ir.Class{Name: "A"}}
	tc := types.NewCache()
	c1 := &FuncVal{Fn: f, Recv: recv, HasRecv: true}
	c2 := &FuncVal{Fn: f, Recv: recv, HasRecv: true}
	c3 := &FuncVal{Fn: g, Recv: recv, HasRecv: true}
	c4 := &FuncVal{Fn: f, Recv: &ObjVal{Class: &ir.Class{Name: "A"}}, HasRecv: true}
	if !ValueEq(c1, c2) {
		t.Error("same method bound to same receiver must be ==")
	}
	if ValueEq(c1, c3) || ValueEq(c1, c4) {
		t.Error("different function or receiver must not be ==")
	}
	// Different type arguments distinguish closures (no erasure).
	c5 := &FuncVal{Fn: f, TypeArgs: []types.Type{tc.Int()}}
	c6 := &FuncVal{Fn: f, TypeArgs: []types.Type{tc.Bool()}}
	c7 := &FuncVal{Fn: f, TypeArgs: []types.Type{tc.Int()}}
	if ValueEq(c5, c6) {
		t.Error("closures with different type arguments must not be ==")
	}
	if !ValueEq(c5, c7) {
		t.Error("closures with equal type arguments must be ==")
	}
}

// TestPropValueEqReflexiveSymmetric: ValueEq is reflexive and symmetric
// on randomly built values.
func TestPropValueEqReflexiveSymmetric(t *testing.T) {
	cls := &ir.Class{Name: "A"}
	var build func(r *rand.Rand, depth int) Value
	build = func(r *rand.Rand, depth int) Value {
		if depth <= 0 {
			switch r.Intn(4) {
			case 0:
				return IntVal(r.Intn(10))
			case 1:
				return BoolVal(r.Intn(2) == 0)
			case 2:
				return ByteVal(byte(r.Intn(5)))
			default:
				return NullVal{}
			}
		}
		switch r.Intn(3) {
		case 0:
			n := r.Intn(3)
			tv := make(TupleVal, n)
			for i := range tv {
				tv[i] = build(r, depth-1)
			}
			return tv
		case 1:
			return &ObjVal{Class: cls}
		default:
			return build(r, 0)
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := build(r, 3)
		b := build(r, 3)
		return ValueEq(a, a) && ValueEq(b, b) && ValueEq(a, b) == ValueEq(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDynTypeOf(t *testing.T) {
	tc := types.NewCache()
	def := tc.NewClassDef("Box", []*types.TypeParamDef{tc.NewTypeParamDef("T", 0, nil)}, nil)
	cls := &ir.Class{Name: "Box", Def: def}
	obj := &ObjVal{Class: cls, Args: []types.Type{tc.Int()}}
	if got := DynTypeOf(tc, obj); got != tc.ClassOf(def, []types.Type{tc.Int()}) {
		t.Errorf("DynTypeOf(obj) = %v", got)
	}
	tv := TupleVal{IntVal(1), BoolVal(true)}
	if got := DynTypeOf(tc, tv); got != tc.TupleOf([]types.Type{tc.Int(), tc.Bool()}) {
		t.Errorf("DynTypeOf(tuple) = %v", got)
	}
	if DynTypeOf(tc, IntVal(0)) != tc.Int() || DynTypeOf(tc, VoidVal{}) != tc.Void() {
		t.Error("prim dynamic types")
	}
	av := &ArrVal{Elem: tc.Byte()}
	if DynTypeOf(tc, av) != tc.ArrayOf(tc.Byte()) {
		t.Error("array dynamic type")
	}
}

func TestDefaultValue(t *testing.T) {
	tc := types.NewCache()
	if DefaultValue(tc, tc.Int()) != IntVal(0) {
		t.Error("int default")
	}
	if DefaultValue(tc, tc.Bool()) != BoolVal(false) {
		t.Error("bool default")
	}
	if _, ok := DefaultValue(tc, tc.Void()).(VoidVal); !ok {
		t.Error("void default")
	}
	pair := tc.TupleOf([]types.Type{tc.Int(), tc.Bool()})
	tv, ok := DefaultValue(tc, pair).(TupleVal)
	if !ok || len(tv) != 2 || tv[0] != IntVal(0) || tv[1] != BoolVal(false) {
		t.Error("tuple default is elementwise defaults")
	}
	def := tc.NewClassDef("A", nil, nil)
	if _, ok := DefaultValue(tc, tc.ClassOf(def, nil)).(NullVal); !ok {
		t.Error("class default is null")
	}
}

func TestIntArithSemantics(t *testing.T) {
	// 32-bit wrapping.
	if v, _ := IntArith(ir.OpAdd, 0x7fffffff, 1); v != -0x80000000 {
		t.Errorf("overflow wraps: got %d", v)
	}
	if v, _ := IntArith(ir.OpMul, 0x10000, 0x10000); v != 0 {
		t.Errorf("mul wraps: got %d", v)
	}
	// Virgil shifts: out-of-range counts produce 0.
	if v, _ := IntArith(ir.OpShl, 1, 32); v != 0 {
		t.Errorf("shl 32 = %d, want 0", v)
	}
	if v, _ := IntArith(ir.OpShr, -1, 1); v != 0x7fffffff {
		t.Errorf("shr is logical: got %d", v)
	}
	if _, err := IntArith(ir.OpDiv, 1, 0); err == nil {
		t.Error("div by zero must trap")
	}
	if _, err := IntArith(ir.OpMod, 1, 0); err == nil {
		t.Error("mod by zero must trap")
	}
	if v, _ := IntArith(ir.OpDiv, -7, 2); v != -3 {
		t.Errorf("division truncates toward zero: got %d", v)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(-3), "-3"},
		{BoolVal(true), "true"},
		{VoidVal{}, "()"},
		{NullVal{}, "null"},
		{TupleVal{IntVal(1), IntVal(2)}, "(1, 2)"},
	}
	for _, c := range cases {
		if got := ValueString(c.v); got != c.want {
			t.Errorf("ValueString(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

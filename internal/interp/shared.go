package interp

import (
	"fmt"
	"io"

	"repro/internal/ir"
	"repro/internal/types"
)

// This file holds the semantic kernel shared by the two execution
// engines: the switch interpreter in this package and the register
// bytecode engine in internal/engine. Both must agree bit-for-bit on
// casts, queries, builtins, and closure typing, so the logic lives here
// once, as package-level functions over explicit inputs.

// EvalQuery implements the universal ? operator on dynamic values.
func EvalQuery(tc *types.Cache, v Value, to types.Type) bool {
	if _, isNull := v.(NullVal); isNull {
		return false
	}
	return tc.IsSubtype(DynTypeOf(tc, v), to)
}

// EvalCast implements the universal ! operator: numeric conversions,
// checked downcasts, recursive tuple casts (§2.3), and null
// propagation into reference types.
func EvalCast(tc *types.Cache, v Value, to types.Type) (Value, error) {
	if _, isNull := v.(NullVal); isNull {
		if types.IsRefType(to) {
			return v, nil
		}
		return nil, &VirgilError{Name: "!TypeCheckException", Msg: "null cast to " + to.String()}
	}
	if p, ok := to.(*types.Prim); ok {
		switch p.Kind {
		case types.KindInt:
			switch av := v.(type) {
			case IntVal:
				return av, nil
			case ByteVal:
				return IntVal(int32(av)), nil
			}
		case types.KindByte:
			switch av := v.(type) {
			case ByteVal:
				return av, nil
			case IntVal:
				if av < 0 || av > 255 {
					return nil, &VirgilError{Name: "!TypeCheckException", Msg: fmt.Sprintf("%d does not fit in byte", int32(av))}
				}
				return ByteVal(byte(av)), nil
			}
		case types.KindBool:
			if av, ok := v.(BoolVal); ok {
				return av, nil
			}
		case types.KindVoid:
			if av, ok := v.(VoidVal); ok {
				return av, nil
			}
		}
		return nil, &VirgilError{Name: "!TypeCheckException", Msg: "cannot cast to " + to.String()}
	}
	if tt, ok := to.(*types.Tuple); ok {
		tv, isTuple := v.(TupleVal)
		if !isTuple || len(tv) != len(tt.Elems) {
			return nil, &VirgilError{Name: "!TypeCheckException", Msg: "cannot cast to " + to.String()}
		}
		out := make(TupleVal, len(tv))
		for k := range tv {
			cv, err := EvalCast(tc, tv[k], tt.Elems[k])
			if err != nil {
				return nil, err
			}
			out[k] = cv
		}
		return out, nil
	}
	if EvalQuery(tc, v, to) {
		return v, nil
	}
	return nil, &VirgilError{Name: "!TypeCheckException", Msg: fmt.Sprintf("%s is not a %s", DynTypeOf(tc, v), to)}
}

// Adapt performs the paper's dynamic calling-convention check (§4.1):
// the callee may declare n scalar parameters or one tuple parameter for
// the same function type, so provided values are packed or unpacked to
// match. In normalized code the shapes always agree. Both engines call
// this at every virtual and indirect call site, updating stats.
func Adapt(stats *Stats, provided []Value, params []*ir.Reg) ([]Value, error) {
	stats.AdaptChecks++
	n, m := len(provided), len(params)
	if n == m {
		return provided, nil
	}
	stats.AdaptPacks++
	switch {
	case m == 1:
		if n == 0 {
			return []Value{VoidVal{}}, nil
		}
		stats.TupleAllocs++
		return []Value{TupleVal(provided)}, nil
	case n == 1:
		if m == 0 {
			return nil, nil
		}
		tv, ok := provided[0].(TupleVal)
		if !ok || len(tv) != m {
			return nil, &VirgilError{Name: "!CallArityException", Msg: fmt.Sprintf("cannot adapt %d value(s) to %d parameter(s)", n, m)}
		}
		return tv, nil
	case n == 0 && m == 0:
		return nil, nil
	}
	return nil, &VirgilError{Name: "!CallArityException", Msg: fmt.Sprintf("cannot adapt %d value(s) to %d parameter(s)", n, m)}
}

// IntArith implements 32-bit wrapping arithmetic with Virgil shift
// semantics (out-of-range shift counts produce 0).
func IntArith(op ir.Op, a, b int32) (int32, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, &VirgilError{Name: "!DivideByZeroException"}
		}
		return a / b, nil
	case ir.OpMod:
		if b == 0 {
			return 0, &VirgilError{Name: "!DivideByZeroException"}
		}
		return a % b, nil
	case ir.OpShl:
		if b < 0 || b > 31 {
			return 0, nil
		}
		return a << uint(b), nil
	case ir.OpShr:
		if b < 0 || b > 31 {
			return 0, nil
		}
		return int32(uint32(a) >> uint(b)), nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	}
	return 0, fmt.Errorf("interp: bad arithmetic op %s", op)
}

// CompareVals implements < <= > >= on int and byte values; any other
// operand kinds compare as (0,0).
func CompareVals(op ir.Op, a, b Value) bool {
	var x, y int64
	switch av := a.(type) {
	case IntVal:
		x, y = int64(av), int64(b.(IntVal))
	case ByteVal:
		x, y = int64(av), int64(b.(ByteVal))
	}
	switch op {
	case ir.OpLt:
		return x < y
	case ir.OpLe:
		return x <= y
	case ir.OpGt:
		return x > y
	case ir.OpGe:
		return x >= y
	}
	return false
}

// CallBuiltin executes a component builtin. steps is the executing
// engine's current step count — the virtual clock read by clock.ticks.
// A returned *VirgilError carries no trace; the caller stamps it.
func CallBuiltin(out io.Writer, name string, args []Value, steps int64) (Value, error) {
	switch name {
	case "System.puts":
		arr, ok := first(args).(*ArrVal)
		if !ok {
			return nil, &VirgilError{Name: "!NullCheckException"}
		}
		if out != nil {
			buf := make([]byte, len(arr.Elems))
			for k, e := range arr.Elems {
				if b, ok := e.(ByteVal); ok {
					buf[k] = byte(b)
				}
			}
			fmt.Fprintf(out, "%s", buf)
		}
		return VoidVal{}, nil
	case "System.puti":
		if out != nil {
			fmt.Fprintf(out, "%d", int32(first(args).(IntVal)))
		}
		return VoidVal{}, nil
	case "System.putc":
		if out != nil {
			fmt.Fprintf(out, "%c", byte(first(args).(ByteVal)))
		}
		return VoidVal{}, nil
	case "System.putb":
		if out != nil {
			fmt.Fprintf(out, "%v", bool(first(args).(BoolVal)))
		}
		return VoidVal{}, nil
	case "System.ln":
		if out != nil {
			fmt.Fprintln(out)
		}
		return VoidVal{}, nil
	case "System.error":
		msg := ""
		if arr, ok := first(args).(*ArrVal); ok {
			buf := make([]byte, len(arr.Elems))
			for k, e := range arr.Elems {
				if b, ok := e.(ByteVal); ok {
					buf[k] = byte(b)
				}
			}
			msg = string(buf)
		}
		return nil, &VirgilError{Name: "!SystemError", Msg: msg}
	case "clock.ticks":
		return IntVal(int32(steps)), nil
	}
	return nil, fmt.Errorf("interp: unknown builtin %q", name)
}

// ClassArgsFromRecv computes the type arguments of the class declaring
// fn, as seen from the dynamic receiver (pre-monomorphization virtual
// dispatch; §4.3).
func ClassArgsFromRecv(tc *types.Cache, fn *ir.Func, recv *ObjVal) []types.Type {
	if fn.NumClassParams == 0 {
		return nil
	}
	w := tc.ClassOf(recv.Class.Def, recv.Args)
	for w != nil && w.Def != fn.Class.Def {
		w = tc.ParentOf(w)
	}
	if w == nil {
		return nil
	}
	return w.Args
}

// ClosureType computes the closed dynamic function type of a closure.
func ClosureType(tc *types.Cache, fn *ir.Func, recv *ObjVal, targs []types.Type) *types.Func {
	var env map[*types.TypeParamDef]types.Type
	if len(fn.TypeParams) > 0 {
		env = map[*types.TypeParamDef]types.Type{}
		all := targs
		if recv != nil && fn.NumClassParams > 0 {
			all = append(ClassArgsFromRecv(tc, fn, recv), targs...)
		}
		for k, p := range fn.TypeParams {
			if k < len(all) {
				env[p] = all[k]
			}
		}
	}
	start := 0
	if recv != nil {
		start = 1
	}
	elems := make([]types.Type, 0, len(fn.Params)-start)
	for _, p := range fn.Params[start:] {
		elems = append(elems, tc.Subst(p.Type, env))
	}
	var ret types.Type = tc.Void()
	if len(fn.Results) == 1 {
		ret = tc.Subst(fn.Results[0], env)
	} else if len(fn.Results) > 1 {
		rs := make([]types.Type, len(fn.Results))
		for k, r := range fn.Results {
			rs[k] = tc.Subst(r, env)
		}
		ret = tc.TupleOf(rs)
	}
	return tc.FuncOf(tc.TupleOf(elems), ret)
}

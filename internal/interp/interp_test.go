package interp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/typecheck"
)

// compileRef compiles source to polymorphic (reference-mode) IR.
func compileRef(t *testing.T, source string) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatalf("lower error: %v", err)
	}
	return mod
}

// runRef runs source in reference mode and returns its System output.
func runRef(t *testing.T, source string) string {
	t.Helper()
	mod := compileRef(t, source)
	var out strings.Builder
	it := New(mod, Options{Out: &out})
	if _, err := it.Run(); err != nil {
		t.Fatalf("run error: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

// runRefErr runs source expecting a Virgil exception.
func runRefErr(t *testing.T, source, wantErr string) {
	t.Helper()
	mod := compileRef(t, source)
	it := New(mod, Options{})
	_, err := it.Run()
	if err == nil {
		t.Fatalf("expected error %q, got none", wantErr)
	}
	if !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("expected error containing %q, got %v", wantErr, err)
	}
}

func TestHello(t *testing.T) {
	got := runRef(t, `
def main() {
	System.puts("hello, world");
	System.ln();
}
`)
	if got != "hello, world\n" {
		t.Fatalf("got %q", got)
	}
}

func TestArithmeticAndControl(t *testing.T) {
	got := runRef(t, `
def fib(n: int) -> int {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
def main() {
	var i = 0;
	while (i < 10) {
		System.puti(fib(i));
		System.putc(' ');
		i++;
	}
}
`)
	if got != "0 1 1 2 3 5 8 13 21 34 " {
		t.Fatalf("got %q", got)
	}
}

func TestPaperExampleB(t *testing.T) {
	// (b1)-(b7): object methods, class methods, constructors as
	// functions.
	got := runRef(t, `
class A {
	var f: int;
	def g: int;
	new(f, g) { }
	def m(a: byte) -> int { return f + g + int.!(a); }
}
def main() {
	var a = A.new(10, 20);
	var m1 = a.m;
	var m2 = A.m;
	var x = a.m('\x05');
	var y = m1('\x04');
	var z = m2(a, '\x06');
	var w = A.new;
	var b = w(1, 2);
	System.puti(x); System.putc(' ');
	System.puti(y); System.putc(' ');
	System.puti(z); System.putc(' ');
	System.puti(b.f + b.g);
}
`)
	if got != "35 34 36 3" {
		t.Fatalf("got %q", got)
	}
}

func TestTuplesBasics(t *testing.T) {
	// (c1)-(c6).
	got := runRef(t, `
def swap(p: (int, int)) -> (int, int) {
	return (p.1, p.0);
}
def main() {
	var x: (int, int) = (0, 1);
	var y: (byte, bool) = ('a', true);
	var z: ((int, int), (byte, bool)) = (x, y);
	var w: (int) = x.0;
	var u: byte = (z.1.0);
	var v: () = ();
	var s = swap(3, 4);
	System.puti(s.0); System.puti(s.1);
	System.puti(w);
	System.putc(u);
	System.putb(x == (0, 1));
	System.putb((1, (2, 3)) == (1, (2, 3)));
}
`)
	if got != "430atruetrue" {
		t.Fatalf("got %q", got)
	}
}

func TestGenericListApply(t *testing.T) {
	// (d1)-(d12').
	got := runRef(t, `
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def print(i: int) { System.puti(i); System.putc(' '); }
def main() {
	var a = List.new(1, List.new(2, List.new(3, null)));
	apply(a, print);
	var b = List.new((3, 4), null);
	System.putb(List<int>.?(a));
	System.putb(List<bool>.?(a));
	System.putb(List<(int, int)>.?(b));
}
`)
	if got != "1 2 3 truefalsetrue" {
		t.Fatalf("got %q", got)
	}
}

func TestTimePattern(t *testing.T) {
	// (e1)-(e5): time returns (B, int); ticks are virtual instruction
	// counts, so elapsed is positive.
	got := runRef(t, `
def time<A, B>(func: A -> B, a: A) -> (B, int) {
	var start = clock.ticks();
	return (func(a), clock.ticks() - start);
}
def square(x: int) -> int { return x * x; }
def main() {
	var r = time(square, 6);
	System.puti(r.0);
	System.putb(r.1 > 0);
}
`)
	if got != "36true" {
		t.Fatalf("got %q", got)
	}
}

func TestVirtualDispatchAndOverride(t *testing.T) {
	got := runRef(t, `
class A {
	def m() -> int { return 1; }
}
class B extends A {
	def m() -> int { return 2; }
}
def main() {
	var a: A = A.new();
	var b: A = B.new();
	System.puti(a.m());
	System.puti(b.m());
}
`)
	if got != "12" {
		t.Fatalf("got %q", got)
	}
}

func TestTupleOverrideAmbiguity(t *testing.T) {
	// (p10)-(p17): a method with two scalar params overridden by one
	// with a single tuple param; dynamic adaptation resolves the call.
	got := runRef(t, `
class A {
	def m(a: int, b: int) -> int { return a + b; }
}
class B extends A {
	def m(a: (int, int)) -> int { return a.0 * a.1; }
}
def pick(z: bool) -> A {
	if (z) return A.new();
	return B.new();
}
def main() {
	var a = pick(true);
	var b = pick(false);
	System.puti(a.m(3, 4));
	System.putc(' ');
	System.puti(b.m(3, 4));
	var t = (3, 4);
	System.putc(' ');
	System.puti(a.m(t));
	System.putc(' ');
	System.puti(b.m(t));
}
`)
	if got != "7 12 7 12" {
		t.Fatalf("got %q", got)
	}
}

func TestFirstClassFunctionAmbiguity(t *testing.T) {
	// (p1)-(p5): f and g have the same type but different arities.
	got := runRef(t, `
def f(a: int, b: int) -> int { return a - b; }
def g(a: (int, int)) -> int { return a.0 * a.1; }
def pick(z: bool) -> (int, int) -> int {
	if (z) return f;
	return g;
}
def main() {
	var x = pick(true);
	var y = pick(false);
	var t = (10, 3);
	System.puti(x(10, 3)); System.putc(' ');
	System.puti(y(10, 3)); System.putc(' ');
	System.puti(x(t)); System.putc(' ');
	System.puti(y(t));
}
`)
	if got != "7 30 7 30" {
		t.Fatalf("got %q", got)
	}
}

func TestInterfaceAdapterPattern(t *testing.T) {
	// (f1)-(g9): interface emulation via a class of function fields.
	got := runRef(t, `
class Store(
	create: () -> int,
	load: int -> int,
	store: int -> ()) {
}
class Impl {
	var next: int;
	def create() -> int { next++; return next; }
	def load(k: int) -> int { return k * 10; }
	def store(r: int) { System.puti(r); }
	def adapt() -> Store {
		return Store.new(create, load, store);
	}
}
def main() {
	var s = Impl.new().adapt();
	System.puti(s.create());
	System.puti(s.create());
	System.puti(s.load(7));
	s.store(99);
}
`)
	if got != "127099" {
		t.Fatalf("got %q", got)
	}
}

func TestADTNumberInterface(t *testing.T) {
	// (h1)-(h9).
	got := runRef(t, `
class NumberInterface<T>(
	add: (T, T) -> T,
	sub: (T, T) -> T,
	lt: (T, T) -> bool,
	one: T,
	zero: T) {
}
def sum3<T>(n: NumberInterface<T>, a: T, b: T, c: T) -> T {
	return n.add(n.add(a, b), c);
}
var IntInterface = NumberInterface.new(int.+, int.-, int.<, 1, 0);
def main() {
	System.puti(sum3(IntInterface, 10, 20, 30));
	System.putb(IntInterface.lt(IntInterface.zero, IntInterface.one));
}
`)
	if got != "60true" {
		t.Fatalf("got %q", got)
	}
}

func TestExceptions(t *testing.T) {
	runRefErr(t, `
class A { var f: int; }
def main() {
	var a: A;
	System.puti(a.f);
}
`, "!NullCheckException")
	runRefErr(t, `
def main() {
	var a = Array<int>.new(3);
	System.puti(a[3]);
}
`, "!BoundsCheckException")
	runRefErr(t, `
def main() { var x = 1 / 0; }
`, "!DivideByZeroException")
	runRefErr(t, `
def main() { var b = byte.!(300); }
`, "!TypeCheckException")
	runRefErr(t, `
class P { }
class Q extends P { }
def main() {
	var p: P = P.new();
	var q = Q.!(p);
}
`, "!TypeCheckException")
}

func TestArrays(t *testing.T) {
	got := runRef(t, `
def main() {
	var a = Array<int>.new(5);
	for (i = 0; i < a.length; i++) a[i] = i * i;
	var sum = 0;
	for (i = 0; i < a.length; i++) sum += a[i];
	System.puti(sum);
	var v = Array<void>.new(4);
	System.puti(v.length);
	v[1];
	var s = "abc";
	System.puti(s.length);
	System.putc(s[1]);
}
`)
	if got != "3043b" {
		t.Fatalf("got %q", got)
	}
}

func TestAdHocPrintPattern(t *testing.T) {
	// (j1)-(j9): print1 via type queries and casts.
	got := runRef(t, `
def printInt(i: int) { System.puti(i); }
def printBool(b: bool) { System.putb(b); }
def printByte(b: byte) { System.putc(b); }
def print1<T>(a: T) {
	if (int.?(a)) printInt(int.!(a));
	if (bool.?(a)) printBool(bool.!(a));
	if (byte.?(a)) printByte(byte.!(a));
}
def main() {
	print1(42);
	print1(false);
	print1('x');
}
`)
	if got != "42falsex" {
		t.Fatalf("got %q", got)
	}
}

func TestPolymorphicMatcherPattern(t *testing.T) {
	// (k1)-(m8): Box/Any + reified type queries drive dispatch.
	got := runRef(t, `
class Any { }
class Box<T> extends Any {
	def val: T;
	new(val) { }
	def unbox() -> T { return val; }
}
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
class Matcher {
	var matches: List<Any>;
	def add<T>(f: T -> void) {
		matches = List.new(Box.new(f), matches);
	}
	def dispatch<T>(v: T) {
		for (l = matches; l != null; l = l.tail) {
			var f = l.head;
			if (Box<T -> void>.?(f)) {
				Box<T -> void>.!(f).unbox()(v);
				return;
			}
		}
	}
}
def printInt(i: int) { System.puti(i); }
def printBool(b: bool) { System.putb(b); }
def printPair(p: (int, int)) {
	System.puti(p.0); System.putc(','); System.puti(p.1);
}
def main() {
	var m = Matcher.new();
	m.add(printInt);
	m.add(printBool);
	m.add(printPair);
	m.dispatch(1);
	m.dispatch(true);
	m.dispatch(7, 9);
}
`)
	if got != "1true7,9" {
		t.Fatalf("got %q", got)
	}
}

func TestVariantInstrPattern(t *testing.T) {
	// (n1)-(n20): variant machine instructions from two classes.
	got := runRef(t, `
class Buffer {
	var count: int;
	def put(b: byte) { System.putc(b); count++; }
}
class Instr {
	def emit(buf: Buffer);
}
class InstrOf<T> extends Instr {
	var emitFunc: (Buffer, T) -> void;
	var val: T;
	new(emitFunc, val) { }
	def emit(buf: Buffer) {
		emitFunc(buf, val);
	}
}
def emitAdd(buf: Buffer, ops: (byte, byte)) {
	buf.put('+'); buf.put(ops.0); buf.put(ops.1);
}
def emitAddi(buf: Buffer, ops: (byte, int)) {
	buf.put('#'); buf.put(ops.0);
}
def emitNeg(buf: Buffer, r: byte) {
	buf.put('-'); buf.put(r);
}
def main() {
	var buf = Buffer.new();
	var i: Instr = InstrOf.new(emitAdd, ('a', 'b'));
	var j: Instr = InstrOf.new(emitAddi, ('a', -11));
	var k: Instr = InstrOf.new(emitNeg, 'a');
	i.emit(buf);
	j.emit(buf);
	k.emit(buf);
	System.putb(InstrOf<byte>.?(k));
	System.putb(InstrOf<(byte, byte)>.?(i));
	System.putb(InstrOf<(byte, byte)>.?(j));
}
`)
	if got != "+ab#a-atruetruefalse" {
		t.Fatalf("got %q", got)
	}
}

func TestHashMapADT(t *testing.T) {
	// (i1)-(i18): HashMap parameterized by hash and equality functions.
	got := runRef(t, `
class HashMap<K, V> {
	def hash: K -> int;
	def equals: (K, K) -> bool;
	var keys: Array<K>;
	var vals: Array<V>;
	var used: Array<bool>;
	new(hash, equals) {
		keys = Array<K>.new(16);
		vals = Array<V>.new(16);
		used = Array<bool>.new(16);
	}
	def slot(key: K) -> int {
		var h = hash(key) % 16;
		if (h < 0) h = 0 - h;
		while (used[h] && !equals(keys[h], key)) h = (h + 1) % 16;
		return h;
	}
	def set(key: K, val: V) {
		var h = slot(key);
		keys[h] = key; vals[h] = val; used[h] = true;
	}
	def get(key: K) -> V {
		return vals[slot(key)];
	}
	def has(key: K) -> bool {
		return used[slot(key)];
	}
}
def idHash(x: int) -> int { return x; }
def pairHash(p: (int, int)) -> int { return p.0 * 31 + p.1; }
def main() {
	var m = HashMap<int, int>.new(idHash, int.==);
	m.set(1, 100);
	m.set(17, 200);
	System.puti(m.get(1));
	System.puti(m.get(17));
	var p = HashMap<(int, int), bool>.new(pairHash, (int, int).==);
	p.set((1, 2), true);
	System.putb(p.get(1, 2));
	System.putb(p.has(2, 1));
}
`)
	if got != "100200truefalse" {
		t.Fatalf("got %q", got)
	}
}

func TestGlobalsAndTernary(t *testing.T) {
	got := runRef(t, `
var counter: int;
def bump() -> int { counter++; return counter; }
var limit = 3;
def main() {
	while (bump() < limit) { }
	System.puti(counter);
	var s = counter == limit ? "eq" : "ne";
	System.puts(s);
}
`)
	if got != "3eq" {
		t.Fatalf("got %q", got)
	}
}

func TestStatsCollected(t *testing.T) {
	mod := compileRef(t, `
def f(a: (int, int)) -> int { return a.0 + a.1; }
def main() {
	var g = f;
	var x = g(1, 2); // indirect: adaptation packs a tuple
	System.puti(x);
}
`)
	var out strings.Builder
	it := New(mod, Options{Out: &out})
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}
	st := it.Stats()
	if st.AdaptChecks == 0 {
		t.Error("expected adaptation checks in reference mode")
	}
	if st.TupleAllocs == 0 {
		t.Error("expected boxed tuple allocations in reference mode")
	}
}

package interp

import (
	"fmt"

	"repro/internal/types"
)

// This file defines the modeled heap cost charged by both execution
// engines. The meter is a cumulative-allocation bound, not a live-heap
// measurement: every program-visible allocation adds its modeled size
// and nothing is ever subtracted, so the budget is a conservative cap
// on total allocation work. The model follows the normalized layouts
// of §4: an object is a header plus one slot per field, an array is a
// header plus its elements (byte elements are 1 byte, all other
// scalarized elements one slot), a boxed tuple is a header plus one
// slot per component, and a closure is a header plus a code pointer
// and a bound receiver. Transient values the engines materialize only
// as calling-convention artifacts (arity-adaptation packs, cast
// rebuilds) are deliberately not charged — they are representation
// details of one configuration, and charging them would make the
// budget diverge between otherwise-equivalent pipelines.
const (
	// HeapHeaderBytes is the modeled per-allocation header.
	HeapHeaderBytes = 16
	// HeapSlotBytes is the modeled size of one value slot.
	HeapSlotBytes = 8
)

// DefaultMaxHeap is the modeled allocation budget when none is
// configured: generous enough that no reasonable program hits it,
// small enough to contain a runaway allocator.
const DefaultMaxHeap int64 = 1 << 30

// HeapExhausted is the trap raised when the modeled heap budget is
// exceeded. Like all traps it carries a source-level trace.
const HeapExhausted = "!HeapExhausted"

// ObjectBytes models an object allocation with n fields.
func ObjectBytes(n int) int64 {
	return HeapHeaderBytes + HeapSlotBytes*int64(n)
}

// ArrayBytes models an array allocation of n elements of type elem.
// Void arrays carry only a length, byte arrays pack one byte per
// element, and every other element occupies a full slot.
func ArrayBytes(tc *types.Cache, elem types.Type, n int64) int64 {
	switch elem {
	case tc.Void():
		return HeapHeaderBytes
	case tc.Byte():
		return HeapHeaderBytes + n
	default:
		return HeapHeaderBytes + HeapSlotBytes*n
	}
}

// StringBytes models a string (byte-array) allocation of n bytes.
func StringBytes(n int) int64 {
	return HeapHeaderBytes + int64(n)
}

// TupleBytes models a boxed tuple with n components.
func TupleBytes(n int) int64 {
	return HeapHeaderBytes + HeapSlotBytes*int64(n)
}

// ClosureBytes models a closure: header, code pointer, bound receiver.
const ClosureBytes int64 = HeapHeaderBytes + 2*HeapSlotBytes

// ChargeHeap adds n modeled bytes to stats and reports whether the
// budget max is now exceeded. Both engines call this at every
// program-visible allocation site so the meter — and the trap point —
// is bit-identical across them.
func ChargeHeap(stats *Stats, max, n int64) bool {
	stats.HeapBytes += n
	return stats.HeapBytes > max
}

// HeapTrap builds the deterministic !HeapExhausted error both engines
// raise, with the trace stamped by the raising engine's call path.
func HeapTrap(n, max int64) *VirgilError {
	return &VirgilError{
		Name: HeapExhausted,
		Msg:  fmt.Sprintf("heap budget exhausted allocating %d bytes (budget %d bytes)", n, max),
	}
}

package profile

import (
	"fmt"

	"repro/internal/ir"
)

// Walk returns every executable function of mod in the deterministic
// discovery order the bytecode engine translates in: module-listed
// functions, init, main, vtable entries, then anything referenced from
// an instruction. Profile site/branch ordinals are assigned along this
// walk, so every consumer of a profile (the engine that records it,
// the optimizer that applies it) must enumerate functions the same
// way; keeping the walk here keeps them from drifting apart.
func Walk(mod *ir.Module) []*ir.Func {
	var work []*ir.Func
	seen := map[*ir.Func]bool{}
	add := func(f *ir.Func) {
		if f == nil || seen[f] {
			return
		}
		seen[f] = true
		work = append(work, f)
	}
	for _, f := range mod.Funcs {
		add(f)
	}
	add(mod.Init)
	add(mod.Main)
	for _, c := range mod.Classes {
		for _, vf := range c.Vtable {
			add(vf)
		}
	}
	for wi := 0; wi < len(work); wi++ {
		for _, b := range work[wi].Blocks {
			for _, in := range b.Instrs {
				add(in.Fn)
			}
		}
	}
	return work
}

// Names assigns each function from Walk a unique profile name: its IR
// name, with a "#k" suffix disambiguating the k-th duplicate in walk
// order. IR names are almost always unique already; the suffix only
// exists so a profile never aliases two functions.
func Names(mod *ir.Module) map[*ir.Func]string {
	names := map[*ir.Func]string{}
	used := map[string]int{}
	for _, f := range Walk(mod) {
		name := f.Name
		if n := used[f.Name]; n > 0 {
			name = fmt.Sprintf("%s#%d", f.Name, n)
		}
		used[f.Name]++
		names[f] = name
	}
	return names
}

// Package profile holds the runtime execution profiles harvested by
// the bytecode engine and consumed by the profile-guided optimizer.
//
// A profile is a per-program summary of what one or more runs actually
// did: which functions were entered and how many steps they burned,
// what every inline-cache site observed (monomorphic hits, misses,
// the receiver class or callee that stuck), and which way every branch
// went (with loop back-edges flagged so trip counts fall out of the
// taken counters). The engine assigns every site and branch a dense
// per-function ordinal in deterministic translation order, so a
// profile recorded by one process can be matched against a fresh
// compilation of the same source in another: keys are function names
// plus ordinals, never pointers or hashes of a particular run.
//
// Profiles are advisory by construction. The optimizer treats every
// entry as a hint that must be re-proven or guarded: a stale or
// mismatched profile can cost speed, never correctness.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Version identifies the profile JSON schema. A consumer must reject
// versions it does not know rather than guess.
const Version = 1

// Site kinds — which kind of call instruction the inline cache guards.
const (
	SiteVirtual  = "virtual"
	SiteIndirect = "indirect"
)

// Default hotness thresholds, shared by the engine's profile-driven
// fusion selection and the optimizer's hot-inlining budget so "hot"
// means the same set of functions at every tier.
const (
	DefaultHotCalls int64 = 32
	DefaultHotSteps int64 = 2048
)

// Site is the observed behavior of one inline-cache call site.
type Site struct {
	// Kind is SiteVirtual or SiteIndirect.
	Kind string `json:"kind"`
	// Hits counts fast-path dispatches through the installed cache.
	Hits int64 `json:"hits"`
	// Misses counts slow-path dispatches (cold or wrong receiver).
	Misses int64 `json:"misses"`
	// Installs counts cache (re)installs; Installs much greater than 1
	// means the site is polymorphic.
	Installs int64 `json:"installs,omitempty"`
	// Mega is set once the engine gave up installing caches at the site.
	Mega bool `json:"mega,omitempty"`
	// Class is the receiver class name observed by the surviving
	// monomorphic cache (virtual sites only). Empty when megamorphic or
	// when merged profiles disagree.
	Class string `json:"class,omitempty"`
	// Callee is the resolved target function name observed by the
	// surviving cache. Empty when megamorphic or on merge conflict.
	Callee string `json:"callee,omitempty"`
}

// Monomorphic reports whether the site stayed on one receiver and is
// worth a speculative guard: a surviving cache identity and a hit
// count that dwarfs the misses.
func (s *Site) Monomorphic() bool {
	return s != nil && !s.Mega && s.Callee != "" && s.Hits > 0 && s.Hits >= 8*s.Misses
}

// Branch is the observed bias of one conditional branch.
type Branch struct {
	// Taken / Not count the two outcomes.
	Taken int64 `json:"taken"`
	Not   int64 `json:"not,omitempty"`
	// Back is set when the taken edge targets an already-emitted block —
	// a loop back-edge, so Taken approximates the trip count.
	Back bool `json:"back,omitempty"`
}

// Func is the profile of one IR function, keyed by the function's
// name in the parent Profile. Sites and Branches are keyed by the
// dense per-function ordinals the engine assigns in translation order
// (stringified, because JSON objects key by string); ordinals are
// stable across processes and -jobs settings.
type Func struct {
	// Calls counts invocations of the function.
	Calls int64 `json:"calls"`
	// Steps is the inclusive step count attributed to invocations of
	// the function (steps burned while the function was on top of the
	// profile attribution, including its fused instructions).
	Steps    int64              `json:"steps,omitempty"`
	Sites    map[string]*Site   `json:"sites,omitempty"`
	Branches map[string]*Branch `json:"branches,omitempty"`
}

// Profile is a complete per-program execution profile.
type Profile struct {
	Version int              `json:"version"`
	Funcs   map[string]*Func `json:"funcs"`
}

// New returns an empty profile at the current version.
func New() *Profile {
	return &Profile{Version: Version, Funcs: map[string]*Func{}}
}

// FuncFor returns the named function profile, creating it on demand.
func (p *Profile) FuncFor(name string) *Func {
	f := p.Funcs[name]
	if f == nil {
		f = &Func{}
		p.Funcs[name] = f
	}
	return f
}

// Site returns the site profile at ordinal ord, creating it on demand.
func (f *Func) Site(ord int) *Site {
	if f.Sites == nil {
		f.Sites = map[string]*Site{}
	}
	k := key(ord)
	s := f.Sites[k]
	if s == nil {
		s = &Site{}
		f.Sites[k] = s
	}
	return s
}

// Branch returns the branch profile at ordinal ord, creating it on
// demand.
func (f *Func) Branch(ord int) *Branch {
	if f.Branches == nil {
		f.Branches = map[string]*Branch{}
	}
	k := key(ord)
	b := f.Branches[k]
	if b == nil {
		b = &Branch{}
		f.Branches[k] = b
	}
	return b
}

// SiteAt returns the site profile at ordinal ord or nil. Read-only:
// never allocates.
func (f *Func) SiteAt(ord int) *Site {
	if f == nil {
		return nil
	}
	return f.Sites[key(ord)]
}

// BranchAt returns the branch profile at ordinal ord or nil.
func (f *Func) BranchAt(ord int) *Branch {
	if f == nil {
		return nil
	}
	return f.Branches[key(ord)]
}

func key(ord int) string { return fmt.Sprintf("%d", ord) }

// Merge folds other into p: counters add, back-edge flags or, and the
// observed cache identity survives only when both profiles agree (a
// conflict clears it, which downgrades the site to "not speculatable"
// rather than guessing).
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	for name, of := range other.Funcs {
		f := p.FuncFor(name)
		f.Calls += of.Calls
		f.Steps += of.Steps
		for k, os := range of.Sites {
			if f.Sites == nil {
				f.Sites = map[string]*Site{}
			}
			s := f.Sites[k]
			if s == nil {
				s = &Site{Kind: os.Kind, Class: os.Class, Callee: os.Callee}
				f.Sites[k] = s
			}
			s.Hits += os.Hits
			s.Misses += os.Misses
			s.Installs += os.Installs
			s.Mega = s.Mega || os.Mega
			if s.Class != os.Class {
				s.Class = ""
			}
			if s.Callee != os.Callee {
				s.Callee = ""
			}
			if s.Kind == "" {
				s.Kind = os.Kind
			}
		}
		for k, ob := range of.Branches {
			if f.Branches == nil {
				f.Branches = map[string]*Branch{}
			}
			b := f.Branches[k]
			if b == nil {
				b = &Branch{Back: ob.Back}
				f.Branches[k] = b
			}
			b.Taken += ob.Taken
			b.Not += ob.Not
			b.Back = b.Back || ob.Back
		}
	}
}

// Empty reports whether the profile recorded nothing at all.
func (p *Profile) Empty() bool {
	if p == nil {
		return true
	}
	for _, f := range p.Funcs {
		if f.Calls != 0 || f.Steps != 0 || len(f.Sites) != 0 || len(f.Branches) != 0 {
			return false
		}
	}
	return true
}

// TotalCalls sums the invocation counters, a quick heat proxy.
func (p *Profile) TotalCalls() int64 {
	var n int64
	for _, f := range p.Funcs {
		n += f.Calls
	}
	return n
}

// Encode writes the profile as stable, human-diffable JSON: object
// keys sort (encoding/json sorts map keys), so two profiles with the
// same counters are byte-identical regardless of collection order or
// -jobs setting.
func (p *Profile) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Decode reads a profile written by Encode, rejecting unknown schema
// versions.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("profile: unsupported version %d (want %d)", p.Version, Version)
	}
	if p.Funcs == nil {
		p.Funcs = map[string]*Func{}
	}
	return &p, nil
}

// HotFuncs returns the names of functions whose invocation count,
// inclusive step count, or loop back-edge traffic meets the
// thresholds, sorted for determinism. These are the functions worth
// paying extra optimization budget on.
func (p *Profile) HotFuncs(minCalls, minSteps int64) []string {
	var hot []string
	for name, f := range p.Funcs {
		var back int64
		for _, b := range f.Branches {
			if b.Back {
				back += b.Taken
			}
		}
		if f.Calls >= minCalls || f.Steps >= minSteps || back >= minCalls {
			hot = append(hot, name)
		}
	}
	sort.Strings(hot)
	return hot
}

package profile

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeStable(t *testing.T) {
	build := func(order []int) *Profile {
		p := New()
		for _, i := range order {
			name := []string{"alpha", "beta", "gamma"}[i]
			f := p.FuncFor(name)
			f.Calls = int64(10 * (i + 1))
			s := f.Site(i)
			s.Kind = SiteVirtual
			s.Hits = int64(i + 1)
			b := f.Branch(i)
			b.Taken = int64(i + 2)
			b.Back = i == 1
		}
		return p
	}
	var b1, b2 bytes.Buffer
	if err := build([]int{0, 1, 2}).Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{2, 0, 1}).Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("insertion order leaked into encoding:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	p := New()
	f := p.FuncFor("main")
	f.Calls = 3
	f.Steps = 99
	s := f.Site(0)
	s.Kind = SiteIndirect
	s.Hits, s.Misses, s.Installs = 7, 1, 1
	s.Callee = "Box.get"
	f.Branch(2).Taken = 41

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gf := got.Funcs["main"]
	if gf == nil || gf.Calls != 3 || gf.Steps != 99 {
		t.Fatalf("func counters lost: %+v", gf)
	}
	if gs := gf.SiteAt(0); gs == nil || gs.Hits != 7 || gs.Callee != "Box.get" || gs.Kind != SiteIndirect {
		t.Fatalf("site lost: %+v", gf.SiteAt(0))
	}
	if gb := gf.BranchAt(2); gb == nil || gb.Taken != 41 {
		t.Fatalf("branch lost: %+v", gf.BranchAt(2))
	}
}

func TestDecodeRejectsVersion(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"version": 99, "funcs": {}}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	af := a.FuncFor("f")
	af.Calls = 1
	as := af.Site(0)
	as.Kind, as.Hits, as.Class, as.Callee = SiteVirtual, 5, "C", "C.m"
	af.Branch(0).Taken = 2

	bf := b.FuncFor("f")
	bf.Calls = 2
	bs := bf.Site(0)
	bs.Kind, bs.Hits, bs.Class, bs.Callee = SiteVirtual, 3, "C", "C.m"
	bb := bf.Branch(0)
	bb.Taken, bb.Back = 4, true
	b.FuncFor("g").Calls = 7

	a.Merge(b)
	f := a.Funcs["f"]
	if f.Calls != 3 {
		t.Fatalf("calls = %d", f.Calls)
	}
	if s := f.SiteAt(0); s.Hits != 8 || s.Class != "C" || s.Callee != "C.m" {
		t.Fatalf("agreeing identities should survive merge: %+v", s)
	}
	if br := f.BranchAt(0); br.Taken != 6 || !br.Back {
		t.Fatalf("branch merge: %+v", br)
	}
	if a.Funcs["g"] == nil || a.Funcs["g"].Calls != 7 {
		t.Fatal("new func not merged")
	}

	// Disagreeing cache identities must clear, not guess.
	c := New()
	cs := c.FuncFor("f").Site(0)
	cs.Kind, cs.Hits, cs.Class, cs.Callee = SiteVirtual, 1, "D", "D.m"
	a.Merge(c)
	if s := a.Funcs["f"].SiteAt(0); s.Class != "" || s.Callee != "" {
		t.Fatalf("conflicting identities must clear: %+v", s)
	}
	if s := a.Funcs["f"].SiteAt(0); s.Monomorphic() {
		t.Fatal("cleared site must not be Monomorphic")
	}
}

func TestMonomorphic(t *testing.T) {
	s := &Site{Kind: SiteVirtual, Hits: 100, Misses: 1, Callee: "C.m"}
	if !s.Monomorphic() {
		t.Fatal("hot mono site should qualify")
	}
	if (&Site{Kind: SiteVirtual, Hits: 10, Misses: 10, Callee: "C.m"}).Monomorphic() {
		t.Fatal("poly site must not qualify")
	}
	if (&Site{Kind: SiteVirtual, Hits: 100, Mega: true, Callee: "C.m"}).Monomorphic() {
		t.Fatal("mega site must not qualify")
	}
}

func TestHotFuncs(t *testing.T) {
	p := New()
	p.FuncFor("cold").Calls = 1
	p.FuncFor("hotcalls").Calls = 500
	lf := p.FuncFor("hotloop")
	lf.Calls = 1
	br := lf.Branch(0)
	br.Taken, br.Back = 10000, true
	got := p.HotFuncs(100, 1000)
	want := []string{"hotcalls", "hotloop"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("HotFuncs = %v, want %v", got, want)
	}
}

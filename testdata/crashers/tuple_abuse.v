def main() { var t = (1, (2, (3, ))); var x = t.9999; }

// Deep closure chain: every round wraps the previous accumulator in a
// fresh object and binds its method as a closure, so objects and bound
// closures accumulate without bound until a guard fires.
class Acc {
	var f: () -> int;
	new(f) { }
	def get() -> int { return f() + 1; }
}
def one() -> int { return 1; }
def main() -> int {
	var a = Acc.new(one);
	while (true) a = Acc.new(a.get);
	return a.get();
}

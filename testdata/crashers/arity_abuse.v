def f(x: int, y: int) -> int { return x + y; }
def main() { f(); f(1); f(1, 2, 3); f(1, 2)(3); }

class A extends A { }
def main() { var a = A.new(); }

def main() -> int {
	var a: Array<int>;
	return a[0] + a.length;
}

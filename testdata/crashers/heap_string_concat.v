// String concatenation loop: strings are byte arrays, so repeated
// self-concatenation doubles the allocation every round until a guard
// fires.
def concat(a: Array<byte>, b: Array<byte>) -> Array<byte> {
	var r = Array<byte>.new(a.length + b.length);
	for (i = 0; i < a.length; i++) r[i] = a[i];
	for (i = 0; i < b.length; i++) r[a.length + i] = b[i];
	return r;
}
def main() -> int {
	var s = "virgil";
	while (true) s = concat(s, s);
	return s.length;
}

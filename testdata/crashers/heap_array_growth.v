// Unbounded array doubling: each round allocates a fresh array twice
// the size and copies the old one over, so the modeled heap grows
// geometrically until a resource guard (heap budget or step budget)
// contains it.
def grow(a: Array<int>) -> Array<int> {
	var b = Array<int>.new(a.length * 2);
	for (i = 0; i < a.length; i++) b[i] = a[i];
	return b;
}
def main() -> int {
	var a = Array<int>.new(64);
	while (true) a = grow(a);
	return a.length;
}

def f<T>(x: T) -> T { return f(f); }
def main() { f(f(f)); }

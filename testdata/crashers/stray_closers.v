}}}} class { } enum ; component def var

/* a block comment that never ends
def main() { }

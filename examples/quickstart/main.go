// Quickstart: compile and run a small Virgil-core program with the
// public pipeline API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

// program shows the paper's four features working together: a generic
// class, first-class functions (a bound method and an operator), tuples
// as multi-argument/multi-return values, and type inference.
const program = `
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}

def map<A, B>(list: List<A>, f: A -> B) -> List<B> {
	if (list == null) return null;
	return List.new(f(list.head), map(list.tail, f));
}

def fold<A, B>(list: List<A>, f: (B, A) -> B, init: B) -> B {
	var acc = init;
	for (l = list; l != null; l = l.tail) acc = f(acc, l.head);
	return acc;
}

def minmax(p: (int, int), x: int) -> (int, int) {
	var lo = p.0, hi = p.1;
	if (x < lo) lo = x;
	if (x > hi) hi = x;
	return (lo, hi);
}

def square(x: int) -> int { return x * x; }

def main() {
	var xs: List<int>;
	for (i = 1; i <= 5; i++) xs = List.new(i, xs);

	// Sum with the + operator used as a first-class function (b10).
	System.puts("sum:     ");
	System.puti(fold(xs, int.+, 0));
	System.ln();

	// Map with a top-level function, then fold a (min, max) tuple.
	var sq = map(xs, square);
	var mm = fold(sq, minmax, (9999, -9999));
	System.puts("min,max: ");
	System.puti(mm.0);
	System.putc(',');
	System.puti(mm.1);
	System.ln();
}
`

func main() {
	// Compile with the full pipeline: monomorphization (§4.3),
	// normalization (§4.2), and optimization.
	comp, err := core.Compile("quickstart.v", program, core.Compiled())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled %d functions, %d classes (%s)\n",
		len(comp.Module.Funcs), len(comp.Module.Classes), comp.Config.Name())
	fmt.Printf("mono expansion: %.2fx, tuples eliminated: %d, queries folded: %d\n\n",
		comp.MonoStats.ExpansionFactor(),
		comp.NormStats.TuplesEliminated,
		comp.OptStats.QueriesFolded)

	stats, err := comp.RunTo(os.Stdout, 0)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("\nexecuted %d vm steps with %d boxed tuples and %d runtime type bindings\n",
		stats.Steps, stats.TupleAllocs, stats.TypeEnvBinds)
}

// Typemetrics compiles workloads under every pipeline configuration and
// reports the implementation metrics the paper's §4 discusses:
// monomorphization code expansion, normalization's structural effect,
// and the runtime costs (boxed tuples, runtime type bindings, dynamic
// arity checks) each stage removes.
//
//	go run ./examples/typemetrics
package main

import (
	"fmt"
	"io"
	"log"

	"repro/internal/core"
	"repro/internal/progen"
	"repro/internal/testprogs"
)

func main() {
	workloads := []testprogs.Prog{
		testprogs.Get("generic_list_d"),
		testprogs.Get("hashmap_i"),
		testprogs.Get("matcher_km"),
		testprogs.BenchTupleSmall(2000),
		{Name: "progen-scale2", Source: progen.Generate(progen.Scale(2))},
	}
	for _, p := range workloads {
		fmt.Printf("=== %s ===\n", p.Name)
		fmt.Printf("%-16s %9s %9s %9s %9s %9s\n",
			"config", "instrs", "steps", "boxes", "binds", "checks")
		for _, cfg := range core.Configs() {
			comp, err := core.Compile(p.Name+".v", p.Source, cfg)
			if err != nil {
				log.Fatalf("%s [%s]: %v", p.Name, cfg.Name(), err)
			}
			st, err := comp.RunTo(io.Discard, 0)
			if err != nil {
				log.Fatalf("%s [%s]: %v", p.Name, cfg.Name(), err)
			}
			fmt.Printf("%-16s %9d %9d %9d %9d %9d\n",
				cfg.Name(), comp.Module.NumInstrs(), st.Steps,
				st.TupleAllocs, st.TypeEnvBinds, st.AdaptChecks)
		}
		comp, err := core.Compile(p.Name+".v", p.Source, core.Compiled())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mono: %d -> %d funcs (%.2fx instrs); norm: %d tuples eliminated, %d fields split; opt: %d queries folded, %d inlined\n\n",
			comp.MonoStats.FuncsBefore, comp.MonoStats.FuncsAfter,
			comp.MonoStats.ExpansionFactor(),
			comp.NormStats.TuplesEliminated, comp.NormStats.FieldsSplit,
			comp.OptStats.QueriesFolded, comp.OptStats.Inlined)
	}
}

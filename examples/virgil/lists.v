// Generic linked lists: the paper's flagship interaction of classes,
// functions and type parameters (§2).
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def map<A, B>(list: List<A>, f: A -> B) -> List<B> {
	if (list == null) return null;
	return List<B>.new(f(list.head), map(list.tail, f));
}
def apply<T>(list: List<T>, f: T -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def double(x: int) -> int { return x * 2; }
def print(x: int) { System.puti(x); System.putc(' '); }
def main() {
	var l = List<int>.new(1, List<int>.new(2, List<int>.new(3, null)));
	apply(map(l, double), print);
	System.ln();
}

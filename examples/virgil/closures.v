// First-class functions: bound methods, partial application of
// operators, and function-typed fields (§2.2).
class Accum {
	var total: int;
	new(total) { }
	def add(x: int) { total = total + x; }
}
def each(xs: Array<int>, f: int -> void) {
	for (i = 0; i < xs.length; i++) f(xs[i]);
}
def main() {
	var a = Accum.new(0);
	var xs = Array<int>.new(4);
	for (i = 0; i < xs.length; i++) xs[i] = i + 1;
	each(xs, a.add);
	System.puti(a.total);
	System.ln();
}

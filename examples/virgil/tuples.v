// Tuples compose with functions and type parameters: multi-value
// returns and tuple parameters flatten away after normalization (§4.2).
def divmod(a: int, b: int) -> (int, int) {
	return (a / b, a % b);
}
def swap<A, B>(p: (A, B)) -> (B, A) {
	return (p.1, p.0);
}
def main() {
	var qr = divmod(17, 5);
	System.puti(qr.0);
	System.putc(' ');
	System.puti(qr.1);
	System.ln();
	var sw = swap((1, true));
	System.putb(sw.0);
	System.putc(' ');
	System.puti(sw.1);
	System.ln();
}

// Classes with single inheritance, virtual dispatch and type queries
// (§2.1, §2.5).
class Shape {
	def area() -> int { return 0; }
}
class Square extends Shape {
	var side: int;
	new(side) { }
	def area() -> int { return side * side; }
}
class Rect extends Shape {
	var w: int;
	var h: int;
	new(w, h) { }
	def area() -> int { return w * h; }
}
def describe(s: Shape) {
	if (Square.?(s)) System.puts("square ");
	else System.puts("other ");
	System.puti(s.area());
	System.ln();
}
def main() {
	describe(Square.new(4));
	describe(Rect.new(2, 3));
}

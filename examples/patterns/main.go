// Patterns runs all six §3 design patterns from the paper end to end,
// in both reference and compiled modes, checking that the emulations —
// interfaces, abstract data types, ad-hoc polymorphism, the polymorphic
// matcher, variant types, and functional-style variance — behave
// identically under both.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/testprogs"
)

func main() {
	patterns := []struct {
		name    string
		section string
		prog    string
	}{
		{"interface adapters", "§3.1 (f1-g9)", "interface_adapter_fg"},
		{"abstract data types", "§3.2 (h1-i18)", "number_adt_h"},
		{"ADT hash map", "§3.2 (i1-i18)", "hashmap_i"},
		{"ad-hoc polymorphism", "§3.3 (j1-j9)", "print1_j"},
		{"polymorphic matcher", "§3.4 (k1-m8)", "matcher_km"},
		{"variant types", "§3.5 (n1-n20)", "variants_n"},
		{"functional variance", "§3.6 (o1-o7)", "variance_o"},
	}
	for _, p := range patterns {
		prog := testprogs.Get(p.prog)
		fmt.Printf("=== %s %s ===\n", p.name, p.section)
		var refOut string
		for _, cfg := range []core.Config{core.Reference(), core.Compiled()} {
			comp, err := core.Compile(prog.Name+".v", prog.Source, cfg)
			if err != nil {
				log.Fatalf("%s [%s]: %v", p.name, cfg.Name(), err)
			}
			res := comp.Run()
			if res.Err != nil {
				log.Fatalf("%s [%s]: %v", p.name, cfg.Name(), res.Err)
			}
			fmt.Printf("  %-14s -> %q (%d vm steps)\n", cfg.Name(), res.Output, res.Stats.Steps)
			if cfg.Name() == "reference" {
				refOut = res.Output
			} else if res.Output != refOut {
				log.Fatalf("%s: outputs differ between modes", p.name)
			}
		}
	}
	fmt.Println("\nall patterns agree across reference and compiled modes")
}

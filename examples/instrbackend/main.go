// Instrbackend is the paper's §3.5 motivating scenario at full scale: a
// compiler backend representing machine instructions as variant types
// built from just two classes (Instr and InstrOf<T>), with assembler
// methods passed as first-class functions and operands as tuples.
//
// It assembles a small virtual instruction sequence into a byte buffer
// and then pattern-matches instructions back out with reified type
// queries (n15-n20), demonstrating that none of this required
// language-level variant types.
//
//	go run ./examples/instrbackend
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

const backend = `
// A tiny x86-flavoured assembler: each emit method encodes one
// instruction form into the buffer.
class Buffer {
	var bytes: Array<byte>;
	var pos: int;
	new() { bytes = Array<byte>.new(256); }
	def put(b: byte) { bytes[pos] = b; pos++; }
	def hex(v: int) {
		var digits = "0123456789abcdef";
		put(digits[(v >> 4) & 15]);
		put(digits[v & 15]);
	}
	def dump() {
		for (i = 0; i < pos; i++) System.putc(bytes[i]);
		System.ln();
	}
}

class Asm {
	def add(buf: Buffer, ops: (byte, byte)) {
		buf.put('A'); buf.put(ops.0); buf.put(ops.1); buf.put(' ');
	}
	def addi(buf: Buffer, ops: (byte, int)) {
		buf.put('I'); buf.put(ops.0); buf.hex(ops.1); buf.put(' ');
	}
	def neg(buf: Buffer, r: byte) {
		buf.put('N'); buf.put(r); buf.put(' ');
	}
	def jmp(buf: Buffer, target: int) {
		buf.put('J'); buf.hex(target); buf.put(' ');
	}
}

// The paper's variant emulation (n1-n11): a base class with an
// abstract emit, and ONE parameterized subclass covering every
// instruction form.
class Instr {
	def emit(buf: Buffer);
}
class InstrOf<T> extends Instr {
	var emitFunc: (Buffer, T) -> void;
	var val: T;
	new(emitFunc, val) { }
	def emit(buf: Buffer) { emitFunc(buf, val); }
}

def rax: byte = '0';
def rbx: byte = '1';
def rcx: byte = '2';

def main() {
	var asm = Asm.new();
	// (n12-n14): assembler methods become instruction constructors.
	var prog = Array<Instr>.new(5);
	prog[0] = InstrOf.new(asm.add, (rax, rbx));
	prog[1] = InstrOf.new(asm.addi, (rcx, 0x2a));
	prog[2] = InstrOf.new(asm.neg, rax);
	prog[3] = InstrOf.new(asm.jmp, 0x10);
	prog[4] = InstrOf.new(asm.add, (rbx, rcx));

	var buf = Buffer.new();
	for (i = 0; i < prog.length; i++) prog[i].emit(buf);
	System.puts("encoded: ");
	buf.dump();

	// (n15-n20): pattern matching with reified type queries.
	var regreg = 0, regimm = 0, onereg = 0, imms = 0;
	for (i = 0; i < prog.length; i++) {
		var ins = prog[i];
		if (InstrOf<(byte, byte)>.?(ins)) regreg++;
		if (InstrOf<(byte, int)>.?(ins)) regimm++;
		if (InstrOf<byte>.?(ins)) onereg++;
		if (InstrOf<int>.?(ins)) imms++;
	}
	System.puts("reg,reg instructions: "); System.puti(regreg); System.ln();
	System.puts("reg,imm instructions: "); System.puti(regimm); System.ln();
	System.puts("one-reg instructions: "); System.puti(onereg); System.ln();
	System.puts("imm-only instructions: "); System.puti(imms); System.ln();

	// Rewrite pass: extract and re-emit only the register-register
	// instructions, casting through the reified instantiation.
	var buf2 = Buffer.new();
	for (i = 0; i < prog.length; i++) {
		if (InstrOf<(byte, byte)>.?(prog[i])) {
			var rr = InstrOf<(byte, byte)>.!(prog[i]);
			rr.emit(buf2);
		}
	}
	System.puts("reg,reg only: ");
	buf2.dump();
}
`

func main() {
	for _, cfg := range []core.Config{core.Reference(), core.Compiled()} {
		comp, err := core.Compile("backend.v", backend, cfg)
		if err != nil {
			log.Fatalf("[%s] %v", cfg.Name(), err)
		}
		fmt.Printf("--- %s ---\n", cfg.Name())
		if _, err := comp.RunTo(os.Stdout, 0); err != nil {
			log.Fatalf("[%s] %v", cfg.Name(), err)
		}
		fmt.Println()
	}
}

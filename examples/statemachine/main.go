// Statemachine demonstrates the two Virgil features this reproduction
// implements beyond the paper's core: enumerated types (the §6.1
// future-work feature the paper calls highest priority) and components
// (the organizational unit behind the paper's System and clock).
//
// The program is a small token scanner written in Virgil-core: a
// component holds the scanner state, an enum classifies characters,
// and an enum-indexed dispatch of first-class handler functions drives
// the state machine — classes, functions, tuples, enums and components
// working together.
//
//	go run ./examples/statemachine
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

const machine = `
enum Kind { DIGIT, LETTER, SPACE, OTHER }

component Classify {
	def of(c: byte) -> Kind {
		if (c >= '0' && c <= '9') return Kind.DIGIT;
		if (c >= 'a' && c <= 'z') return Kind.LETTER;
		if (c == ' ') return Kind.SPACE;
		return Kind.OTHER;
	}
}

component Scanner {
	var numbers: int;
	var words: int;
	var others: int;
	var inTok: bool;
	var tokKind: Kind;

	def reset() { numbers = 0; words = 0; others = 0; inTok = false; }

	def feed(c: byte) {
		var k = Classify.of(c);
		if (k == Kind.SPACE) { flush(); return; }
		if (k == Kind.OTHER) { flush(); others++; return; }
		if (inTok && k == tokKind) return;
		flush();
		inTok = true;
		tokKind = k;
	}

	def flush() {
		if (!inTok) return;
		if (tokKind == Kind.DIGIT) numbers++;
		if (tokKind == Kind.LETTER) words++;
		inTok = false;
	}

	def scan(s: string) {
		reset();
		for (i = 0; i < s.length; i++) feed(s[i]);
		flush();
	}
}

def report(label: string, n: int) {
	System.puts(label);
	System.puti(n);
	System.putc(' ');
}

def main() {
	Scanner.scan("abc 123 x9 ... 42 hello");
	report("numbers=", Scanner.numbers);
	report("words=", Scanner.words);
	report("others=", Scanner.others);
	System.ln();

	// Enums carry their case names at runtime (.name), reified like
	// everything else in Virgil.
	var ks = Array<Kind>.new(4);
	ks[0] = Kind.DIGIT; ks[1] = Kind.LETTER; ks[2] = Kind.SPACE; ks[3] = Kind.OTHER;
	for (i = 0; i < ks.length; i++) {
		System.puts(ks[i].name);
		System.putc('(');
		System.puti(ks[i].tag);
		System.puts(") ");
	}
	System.ln();
}
`

func main() {
	for _, cfg := range []core.Config{core.Reference(), core.Compiled()} {
		comp, err := core.Compile("machine.v", machine, cfg)
		if err != nil {
			log.Fatalf("[%s] %v", cfg.Name(), err)
		}
		fmt.Printf("--- %s ---\n", cfg.Name())
		if _, err := comp.RunTo(os.Stdout, 0); err != nil {
			log.Fatalf("[%s] %v", cfg.Name(), err)
		}
	}
}

GO ?= go

.PHONY: build test race bench bench-short bench-check lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector; the parallel pipeline's
# determinism test (jobs=1 vs jobs=8) runs here with full checking.
race:
	$(GO) test -race ./...

# bench records the full E1-E7 + CompileParallel suite to
# BENCH_<date>.json in the repo root.
bench:
	$(GO) run ./cmd/bench

# bench-short is the CI-sized run.
bench-short:
	$(GO) run ./cmd/bench -short

# bench-check additionally fails if parallel compilation regresses
# against the sequential path (core-count-aware floor).
bench-check:
	$(GO) run ./cmd/bench -short -check

lint:
	for f in examples/virgil/*.v; do $(GO) run ./cmd/virgil lint $$f; done
